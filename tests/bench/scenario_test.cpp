// Scenario-registry tests: registry completeness, glob filtering, the
// smoke scenario end to end, and the guarantee that enabling metrics
// leaves scenario stdout byte-identical.
#include "bench/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace flo::bench {
namespace {

TEST(ScenarioRegistryTest, EveryHistoricalBinaryHasAScenario) {
  const std::set<std::string> expected = {
      "table2",        "table3",           "fig7a",
      "fig7b",         "fig7c",            "fig7d",
      "fig7e",         "fig7f",            "fig7g",
      "fig7h",         "compile_stats",    "ablation_step1",
      "ablation_scale", "ablation_prefetch", "ablation_template",
      "solver_ablation", "fault_sweep",    "calibrate",
      "smoke",         "tenant_mix",       "chunk_analytics",
      "write_path",    "tenant_qos"};
  std::set<std::string> actual;
  for (const auto& spec : scenarios()) {
    EXPECT_TRUE(actual.insert(spec.name).second)
        << "duplicate scenario name: " << spec.name;
    EXPECT_NE(spec.run, nullptr) << spec.name;
    EXPECT_FALSE(spec.title.empty()) << spec.name;
  }
  EXPECT_EQ(actual, expected);
}

TEST(ScenarioRegistryTest, FindScenario) {
  ASSERT_NE(find_scenario("fig7a"), nullptr);
  EXPECT_EQ(find_scenario("fig7a")->name, "fig7a");
  EXPECT_EQ(find_scenario("nope"), nullptr);
}

TEST(GlobMatchTest, Basics) {
  EXPECT_TRUE(glob_match("fig7a", "fig7a"));
  EXPECT_FALSE(glob_match("fig7a", "fig7b"));
  EXPECT_TRUE(glob_match("fig7*", "fig7a"));
  EXPECT_TRUE(glob_match("fig7*", "fig7h"));
  EXPECT_FALSE(glob_match("fig7*", "xfig7a"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig7?", "fig7a"));
  EXPECT_FALSE(glob_match("fig7?", "fig7"));
  EXPECT_TRUE(glob_match("*7a", "fig7a"));
  EXPECT_TRUE(glob_match("f*g*a", "fig7a"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("*", ""));
}

TEST(GlobMatchTest, MatchesTagsToo) {
  const auto figures = match_scenarios("figure");
  EXPECT_EQ(figures.size(), 8u);  // fig7a..fig7h carry the "figure" tag
  const auto by_name = match_scenarios("fig7*");
  EXPECT_EQ(by_name.size(), 8u);
  const auto none = match_scenarios("no-such-thing");
  EXPECT_TRUE(none.empty());
}

TEST(SmokeScenarioTest, RunsAndEmitsHeadlineRows) {
  const ScenarioSpec* spec = find_scenario("smoke");
  ASSERT_NE(spec, nullptr);
  std::ostringstream os;
  ScenarioContext ctx(os);
  ctx.set_scenario("smoke");
  EXPECT_EQ(spec->run(ctx), 0);
  EXPECT_NE(os.str().find("average improvement:"), std::string::npos);
  ASSERT_FALSE(ctx.rows().empty());
  bool saw_average = false;
  for (const auto& row : ctx.rows()) {
    EXPECT_EQ(row.scenario, "smoke");
    saw_average |= row.key == "avg_improvement";
  }
  EXPECT_TRUE(saw_average);
}

// The tentpole guarantee: flipping metrics on must not change a scenario's
// human-readable output by a single byte.
TEST(SmokeScenarioTest, MetricsOnLeavesStdoutByteIdentical) {
  const ScenarioSpec* spec = find_scenario("smoke");
  ASSERT_NE(spec, nullptr);

  std::ostringstream off;
  {
    ASSERT_FALSE(obs::enabled());
    ScenarioContext ctx(off);
    ctx.set_scenario("smoke");
    ASSERT_EQ(spec->run(ctx), 0);
  }

  std::ostringstream on;
  obs::set_enabled(true);
  {
    ScenarioContext ctx(on);
    ctx.set_scenario("smoke");
    ASSERT_EQ(spec->run(ctx), 0);
  }
  obs::set_enabled(false);

  // Metrics were recorded on the side...
  bool saw_cells = false;
  for (const auto& sample : obs::registry().snapshot()) {
    saw_cells |= sample.name == "engine.cells_total" && sample.value > 0;
  }
  EXPECT_TRUE(saw_cells);
  obs::registry().reset();
  obs::recorder().clear();

  // ...and stdout is untouched.
  EXPECT_EQ(off.str(), on.str());
}

}  // namespace
}  // namespace flo::bench
