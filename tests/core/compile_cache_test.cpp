// core::CompileCache: fingerprint keys, shared-future dedup, poisoned-entry
// retry, LRU eviction, and the crash-safe rendered-tier journal.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/compile_cache.hpp"
#include "ir/builder.hpp"

namespace flo::core {
namespace {

ir::Program tiny_program(const char* name = "tiny", std::int64_t n = 16) {
  return ir::ProgramBuilder(name)
      .array("A", {n, n})
      .nest("scan", {{0, n - 1}, {0, n - 1}}, 0)
      .read("A", {{1, 0}, {0, 1}})
      .done()
      .build();
}

CompiledExperiment fake_compiled() { return CompiledExperiment{}; }

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name + "." + std::to_string(::getpid()) +
         ".journal";
}

TEST(CompileCacheTest, FingerprintsFollowContentNotIdentity) {
  const auto a = tiny_program();
  const auto b = tiny_program();  // distinct instance, same content
  EXPECT_EQ(program_fingerprint(a), program_fingerprint(b));
  const auto c = tiny_program("tiny", 32);
  EXPECT_NE(program_fingerprint(a), program_fingerprint(c));

  ExperimentConfig config;
  config.scheme = Scheme::kInterNode;
  EXPECT_EQ(compile_fingerprint(program_fingerprint(a), config),
            compile_fingerprint(program_fingerprint(b), config));

  // compile_topology participates: two configs simulating different
  // hierarchies but compiling against the SAME reference share a key —
  // the template-family fast tier.
  ExperimentConfig member1 = config;
  ExperimentConfig member2 = config;
  member1.topology.storage_cache_bytes *= 2;
  member2.topology.storage_cache_bytes *= 4;
  member1.compile_topology = config.topology;
  member2.compile_topology = config.topology;
  EXPECT_EQ(compile_fingerprint(program_fingerprint(a), member1),
            compile_fingerprint(program_fingerprint(a), member2));
  // ...while distinct compile topologies do not.
  member2.compile_topology->storage_cache_bytes *= 2;
  EXPECT_NE(compile_fingerprint(program_fingerprint(a), member1),
            compile_fingerprint(program_fingerprint(a), member2));
}

TEST(CompileCacheTest, QosConfigJoinsTheFingerprint) {
  // QoS changes simulation results, so every knob must split the key for
  // topology-dependent schemes. (Scheme::kDefault compiles from the
  // program alone; its cells stay distinct via the journal key, which
  // appends the full topology — QoS included — for every scheme.)
  const auto program = tiny_program();
  const auto fp = program_fingerprint(program);
  ExperimentConfig plain;
  plain.scheme = Scheme::kInterNode;
  ExperimentConfig qos = plain;
  qos.topology.qos.enabled = true;
  EXPECT_NE(compile_fingerprint(fp, plain), compile_fingerprint(fp, qos));

  ExperimentConfig shares = qos;
  shares.topology.qos.shares = {2, 1};
  EXPECT_NE(compile_fingerprint(fp, qos), compile_fingerprint(fp, shares));

  ExperimentConfig sched = qos;
  sched.topology.qos.scheduler = storage::SchedPolicyKind::kPriority;
  EXPECT_NE(compile_fingerprint(fp, qos), compile_fingerprint(fp, sched));

  ExperimentConfig dynamic = shares;
  dynamic.topology.qos.dynamic_shares = true;
  EXPECT_NE(compile_fingerprint(fp, shares),
            compile_fingerprint(fp, dynamic));

  ExperimentConfig window = qos;
  window.topology.qos.sched_window = 40e-3;
  EXPECT_NE(compile_fingerprint(fp, qos), compile_fingerprint(fp, window));
}

TEST(CompileCacheTest, GetOrCompileDedupsAndCounts) {
  CompileCache cache;
  std::atomic<int> compiles{0};
  const auto compile = [&] {
    compiles.fetch_add(1);
    return fake_compiled();
  };
  const CompiledPtr first = cache.get_or_compile("k1", compile);
  const CompiledPtr again = cache.get_or_compile("k1", compile);
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(compiles.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(CompileCacheTest, ConcurrentRequestersShareOneCompile) {
  CompileCache cache;
  std::atomic<int> compiles{0};
  std::vector<std::thread> threads;
  std::vector<CompiledPtr> results(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      results[i] = cache.get_or_compile("shared", [&] {
        compiles.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return fake_compiled();
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(compiles.load(), 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(results[i].get(), results[0].get());
}

TEST(CompileCacheTest, FailedCompileIsRetriedNotPoisoned) {
  CompileCache cache;
  int calls = 0;
  EXPECT_THROW(cache.get_or_compile("flaky",
                                    [&]() -> CompiledExperiment {
                                      ++calls;
                                      throw std::runtime_error("boom");
                                    }),
               std::runtime_error);
  const CompiledPtr ok = cache.get_or_compile("flaky", [&] {
    ++calls;
    return fake_compiled();
  });
  EXPECT_NE(ok, nullptr);
  EXPECT_EQ(calls, 2);
}

TEST(CompileCacheTest, LruEvictionRespectsCapacityAndRecency) {
  CompileCacheOptions options;
  options.capacity = 2;
  CompileCache cache(options);
  (void)cache.get_or_compile("a", fake_compiled);
  (void)cache.get_or_compile("b", fake_compiled);
  (void)cache.get_or_compile("a", fake_compiled);  // refresh a
  (void)cache.get_or_compile("c", fake_compiled);  // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  int compiles = 0;
  (void)cache.get_or_compile("a", [&] {
    ++compiles;
    return fake_compiled();
  });
  EXPECT_EQ(compiles, 0) << "recently-used entry was evicted";
  (void)cache.get_or_compile("b", [&] {
    ++compiles;
    return fake_compiled();
  });
  EXPECT_EQ(compiles, 1) << "LRU entry survived eviction";
}

TEST(CompileCacheTest, RenderedTierSurvivesRestartViaJournal) {
  const std::string path = temp_path("cache_restart");
  std::remove(path.c_str());
  {
    CompileCacheOptions options;
    options.journal_path = path;
    CompileCache cache(options);
    cache.store_rendered("k1", {"exact", "plan body\nwith two lines"});
    cache.store_rendered("k2", {"template", "body% with %0A escapes\r\n"});
  }
  CompileCacheOptions options;
  options.journal_path = path;
  CompileCache restarted(options);
  EXPECT_EQ(restarted.stats().journal_replayed, 2u);
  const auto k1 = restarted.lookup_rendered("k1");
  ASSERT_TRUE(k1.has_value());
  EXPECT_EQ(k1->tier, "exact");
  EXPECT_EQ(k1->body, "plan body\nwith two lines");
  const auto k2 = restarted.lookup_rendered("k2");
  ASSERT_TRUE(k2.has_value());
  EXPECT_EQ(k2->body, "body% with %0A escapes\r\n");
  EXPECT_EQ(restarted.stats().hits, 2u);
  std::remove(path.c_str());
}

TEST(CompileCacheTest, CorruptJournalLinesAreSkippedNotTrusted) {
  const std::string path = temp_path("cache_corrupt");
  {
    CompileCacheOptions options;
    options.journal_path = path;
    CompileCache cache(options);
    cache.store_rendered("good", {"exact", "intact body"});
  }
  {
    // Append garbage: a truncated line, binary noise, a bad escape.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "truncated exact half-a-bo";
    out << "\n\x01\x02\x03 binary junk\n";
    out << "badescape exact body%zz\n";
  }
  CompileCacheOptions options;
  options.journal_path = path;
  CompileCache cache(options);
  // Only the intact entry plus the parseable "truncated" line (its body
  // is complete as far as the line goes) may come back; the binary and
  // bad-escape lines must be dropped, never mis-attributed.
  EXPECT_TRUE(cache.lookup_rendered("good").has_value());
  EXPECT_FALSE(cache.lookup_rendered("badescape").has_value());
  std::remove(path.c_str());
}

TEST(CompileCacheTest, ForeignJournalFileIsRefusedLoudly) {
  const std::string path = temp_path("cache_foreign");
  {
    std::ofstream out(path);
    out << "flo-journal-v2 deadbeef\nsome engine checkpoint\n";
  }
  CompileCacheOptions options;
  options.journal_path = path;
  EXPECT_THROW(CompileCache cache(options), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CompileCacheTest, NonJournalFileIsRefusedNotOverwritten) {
  // Pointing the journal at some unrelated file must refuse loudly
  // rather than silently treating it as a fresh journal (and later
  // clobbering it on the first rewrite).
  const std::string path = temp_path("cache_nonjournal");
  {
    std::ofstream out(path);
    out << "just some notes\n";
  }
  CompileCacheOptions options;
  options.journal_path = path;
  try {
    CompileCache cache(options);
    FAIL() << "expected a loud refusal for a non-journal file";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("not a compile-cache journal"),
              std::string::npos)
        << error.what();
  }
  // The refusal must leave the file untouched.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "just some notes");
  std::remove(path.c_str());
}

TEST(CompileCacheTest, LeftoverTmpFromCrashedRenameIsIgnored) {
  const std::string path = temp_path("cache_tmp_leftover");
  {
    CompileCacheOptions options;
    options.journal_path = path;
    CompileCache cache(options);
    cache.store_rendered("settled", {"exact", "committed body"});
  }
  // A crash between tmp write and rename leaves <path>.tmp.<pid>; the
  // committed journal must win and the leftover must not confuse replay.
  {
    std::ofstream out(path + ".tmp." + std::to_string(::getpid()));
    out << "flo-cachejournal-v1\nsettled exact half-writ";
  }
  CompileCacheOptions options;
  options.journal_path = path;
  CompileCache cache(options);
  const auto entry = cache.lookup_rendered("settled");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->body, "committed body");
  std::remove(path.c_str());
  std::remove((path + ".tmp." + std::to_string(::getpid())).c_str());
}

TEST(CompileCacheTest, EvictionDropsRenderedEntriesFromTheJournal) {
  const std::string path = temp_path("cache_evict_journal");
  std::remove(path.c_str());
  {
    CompileCacheOptions options;
    options.capacity = 1;
    options.journal_path = path;
    CompileCache cache(options);
    cache.store_rendered("old", {"exact", "old body"});
    cache.store_rendered("new", {"exact", "new body"});  // evicts "old"
    EXPECT_EQ(cache.stats().evictions, 1u);
  }
  CompileCacheOptions options;
  options.journal_path = path;
  CompileCache restarted(options);
  EXPECT_FALSE(restarted.lookup_rendered("old").has_value());
  EXPECT_TRUE(restarted.lookup_rendered("new").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flo::core
