// Fault-tolerant engine behaviour: per-cell exception isolation, wall-clock
// timeouts, bounded transient retries, and checkpoint/resume through the
// journal — plus grid-level determinism of injected storage faults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>

#include "core/engine.hpp"
#include "ir/builder.hpp"

namespace flo::core {
namespace {

ir::Program tiny_program(std::int64_t n = 32) {
  return ir::ProgramBuilder("tiny")
      .array("A", {n, n})
      .nest("scan", {{0, n - 1}, {0, n - 1}}, 0, /*repeat=*/2)
      .read("A", {{1, 0}, {0, 1}})
      .write("A", {{0, 1}, {1, 0}})
      .done()
      .build();
}

std::string temp_journal(const char* name) {
  return testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + ".journal";
}

TEST(EngineFaultToleranceTest, CrashingAndHangingCellsDoNotKillTheGrid) {
  const auto p = tiny_program();
  ExperimentConfig base;
  std::vector<ExperimentJob> jobs;
  for (const char* label : {"ok-1", "crash", "ok-2", "hang", "ok-3"}) {
    jobs.push_back({label, &p, base});
  }
  EngineOptions options;
  options.workers = 2;
  options.job_timeout = 0.25;
  options.runner = [](const ExperimentJob& job) -> ExperimentResult {
    if (job.label == "crash") {
      throw std::runtime_error("deliberate crash in " + job.label);
    }
    if (job.label == "hang") {
      std::this_thread::sleep_for(std::chrono::seconds(2));
    }
    ExperimentResult r;
    r.sim.exec_time = 1.0;
    return r;
  };
  const auto results = ExperimentEngine(options).run_guarded(jobs);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[2].failed);
  EXPECT_FALSE(results[4].failed);
  EXPECT_TRUE(results[1].failed);
  EXPECT_NE(results[1].reason.find("deliberate crash"), std::string::npos);
  ASSERT_TRUE(results[1].error != nullptr);
  EXPECT_THROW(std::rethrow_exception(results[1].error), std::runtime_error);
  EXPECT_TRUE(results[3].failed);
  EXPECT_NE(results[3].reason.find("timeout"), std::string::npos);
  EXPECT_TRUE(results[3].error == nullptr);  // nothing thrown: it hung
}

TEST(EngineFaultToleranceTest, StrictRunRethrowsLowestIndexWithType) {
  const auto p = tiny_program();
  ExperimentConfig base;
  EngineOptions options;
  options.workers = 4;
  options.runner = [](const ExperimentJob& job) -> ExperimentResult {
    if (job.label == "bad") throw std::domain_error("boom");
    return {};
  };
  ExperimentEngine engine(options);
  EXPECT_THROW(engine.run({{"ok", &p, base}, {"bad", &p, base}}),
               std::domain_error);
}

TEST(EngineFaultToleranceTest, NullProgramStillThrowsInvalidArgument) {
  const auto p = tiny_program();
  ExperimentConfig base;
  ExperimentEngine engine(EngineOptions{4});
  EXPECT_THROW(engine.run({{"ok", &p, base}, {"bad", nullptr, base}}),
               std::invalid_argument);
}

TEST(EngineFaultToleranceTest, TransientErrorsRetryUpToBudget) {
  const auto p = tiny_program();
  ExperimentConfig base;
  std::atomic<int> calls{0};
  EngineOptions options;
  options.workers = 1;
  options.max_retries = 2;
  options.runner = [&](const ExperimentJob&) -> ExperimentResult {
    if (calls.fetch_add(1) < 2) throw TransientError("hiccup");
    ExperimentResult r;
    r.sim.exec_time = 42;
    return r;
  };
  const auto results =
      ExperimentEngine(options).run_guarded({{"flaky", &p, base}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_EQ(results[0].attempts, 3u);
  EXPECT_DOUBLE_EQ(results[0].result.sim.exec_time, 42);
}

TEST(EngineFaultToleranceTest, TransientBudgetExhaustionFails) {
  const auto p = tiny_program();
  ExperimentConfig base;
  std::atomic<int> calls{0};
  EngineOptions options;
  options.workers = 1;
  options.max_retries = 1;
  options.runner = [&](const ExperimentJob&) -> ExperimentResult {
    ++calls;
    throw TransientError("still down");
  };
  const auto results =
      ExperimentEngine(options).run_guarded({{"dead", &p, base}});
  EXPECT_TRUE(results[0].failed);
  EXPECT_EQ(results[0].attempts, 2u);
  EXPECT_EQ(calls.load(), 2);
  // Non-transient failures must NOT be retried.
  calls = 0;
  options.runner = [&](const ExperimentJob&) -> ExperimentResult {
    ++calls;
    throw std::runtime_error("hard failure");
  };
  const auto hard = ExperimentEngine(options).run_guarded({{"bug", &p, base}});
  EXPECT_TRUE(hard[0].failed);
  EXPECT_EQ(calls.load(), 1);
}

TEST(EngineFaultToleranceTest, JournalResumeSkipsCompletedCells) {
  const auto p = tiny_program();
  const auto q = tiny_program(16);
  ExperimentConfig base;
  ExperimentConfig inter = base;
  inter.scheme = Scheme::kInterNode;
  const std::vector<ExperimentJob> jobs{
      {"p/default", &p, base}, {"p/inter", &p, inter}, {"q/default", &q, base}};
  const std::string journal = temp_journal("resume");
  std::remove(journal.c_str());

  EngineOptions options;
  options.workers = 2;
  options.journal_path = journal;
  const auto first = ExperimentEngine(options).run_guarded(jobs);
  ASSERT_EQ(first.size(), 3u);
  for (const auto& r : first) {
    EXPECT_FALSE(r.failed);
    EXPECT_FALSE(r.from_journal);
  }

  // Second run: every cell must come from the journal (the runner would
  // make any recomputed cell visibly different).
  EngineOptions resumed = options;
  resumed.runner = [](const ExperimentJob&) -> ExperimentResult {
    throw std::logic_error("cell recomputed despite journal");
  };
  const auto second = ExperimentEngine(resumed).run_guarded(jobs);
  ASSERT_EQ(second.size(), 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_FALSE(second[i].failed) << second[i].reason;
    EXPECT_TRUE(second[i].from_journal);
    EXPECT_EQ(second[i].attempts, 0u);
    EXPECT_EQ(second[i].result.sim, first[i].result.sim) << jobs[i].label;
    EXPECT_EQ(second[i].result.profiler_runs, first[i].result.profiler_runs);
  }

  // A new cell joins the grid: only it is computed.
  std::vector<ExperimentJob> extended = jobs;
  ExperimentConfig karma = base;
  karma.policy = storage::PolicyKind::kKarma;
  extended.push_back({"p/karma", &p, karma});
  std::atomic<int> computed{0};
  EngineOptions partial = options;
  partial.runner = [&](const ExperimentJob& job) -> ExperimentResult {
    ++computed;
    EXPECT_EQ(job.label, "p/karma");
    return {};
  };
  const auto third = ExperimentEngine(partial).run_guarded(extended);
  EXPECT_EQ(computed.load(), 1);
  EXPECT_TRUE(third[3].attempts == 1u && !third[3].from_journal);
  std::remove(journal.c_str());
}

TEST(EngineFaultToleranceTest, StaleJournalFromChangedProgramIsRefused) {
  // The seed bug this guards against: journal cells were keyed by label
  // alone, so editing a workload and resuming silently served results of
  // the OLD program. Keys now carry a program-content fingerprint and the
  // header a grid hash; a label whose program changed no longer matches
  // any current cell, and the resume is refused loudly.
  const auto before = tiny_program(32);
  const auto after = tiny_program(16);  // same label, different content
  ExperimentConfig base;
  const std::string journal = temp_journal("stale");
  std::remove(journal.c_str());
  EngineOptions options;
  options.workers = 1;
  options.journal_path = journal;
  const auto first =
      ExperimentEngine(options).run_guarded({{"cell", &before, base}});
  ASSERT_FALSE(first[0].failed);
  try {
    ExperimentEngine(options).run_guarded({{"cell", &after, base}});
    FAIL() << "stale journal was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("grid mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(journal), std::string::npos) << what;
  }
  std::remove(journal.c_str());
}

TEST(EngineFaultToleranceTest, JournalV1FormatRefusedWithDiagnostic) {
  const auto p = tiny_program();
  ExperimentConfig base;
  const std::string journal = temp_journal("v1");
  {
    std::ofstream out(journal);
    out << "flo-journal-v1\n";
  }
  EngineOptions options;
  options.workers = 1;
  options.journal_path = journal;
  try {
    ExperimentEngine(options).run_guarded({{"cell", &p, base}});
    FAIL() << "v1 journal was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported format"), std::string::npos) << what;
    EXPECT_NE(what.find(journal), std::string::npos) << what;
  }
  std::remove(journal.c_str());
}

TEST(EngineFaultToleranceTest, JournalSurvivesUnparseableFile) {
  const auto p = tiny_program();
  ExperimentConfig base;
  const std::string journal = temp_journal("garbage");
  {
    std::ofstream out(journal);
    out << "not a journal at all\nrandom noise\n";
  }
  EngineOptions options;
  options.workers = 1;
  options.journal_path = journal;
  const auto results =
      ExperimentEngine(options).run_guarded({{"cell", &p, base}});
  EXPECT_FALSE(results[0].failed);
  EXPECT_FALSE(results[0].from_journal);  // recomputed, not misparsed
  // The rewritten journal is now valid and resumable.
  const auto again = ExperimentEngine(options).run_guarded({{"cell", &p, base}});
  EXPECT_TRUE(again[0].from_journal);
  EXPECT_EQ(again[0].result.sim, results[0].result.sim);
  std::remove(journal.c_str());
}

TEST(EngineFaultToleranceTest, FailedCellsAreNotJournaled) {
  const auto p = tiny_program();
  ExperimentConfig base;
  const std::string journal = temp_journal("failures");
  std::remove(journal.c_str());
  std::atomic<int> calls{0};
  EngineOptions options;
  options.workers = 1;
  options.journal_path = journal;
  options.runner = [&](const ExperimentJob&) -> ExperimentResult {
    if (calls.fetch_add(1) == 0) throw std::runtime_error("first run dies");
    return {};
  };
  const auto first = ExperimentEngine(options).run_guarded({{"c", &p, base}});
  EXPECT_TRUE(first[0].failed);
  const auto second = ExperimentEngine(options).run_guarded({{"c", &p, base}});
  EXPECT_FALSE(second[0].failed);
  EXPECT_FALSE(second[0].from_journal);  // the failure was not checkpointed
  EXPECT_EQ(calls.load(), 2);
  std::remove(journal.c_str());
}

// Satellite acceptance: with a seeded FaultPlan in the topology, simulator
// stats are byte-identical across 1 and 4 engine workers.
TEST(EngineFaultToleranceTest, InjectedFaultsDeterministicAcrossWorkerCounts) {
  const auto p = tiny_program();
  const auto q = tiny_program(48);
  ExperimentConfig faulted;
  faulted.topology.fault.enabled = true;
  faulted.topology.fault.seed = 7;
  faulted.topology.fault.disk_transient_rate = 0.05;
  faulted.topology.fault.storage_transient_rate = 0.02;
  faulted.topology.fault.slow_disk_rate = 0.05;
  faulted.topology.fault.outages.push_back(
      {storage::FaultLayer::kStorage, 0, 0.0, 0.5});
  ExperimentConfig inter = faulted;
  inter.scheme = Scheme::kInterNode;
  const std::vector<ExperimentJob> jobs{{"p/default", &p, faulted},
                                        {"p/inter", &p, inter},
                                        {"q/default", &q, faulted},
                                        {"q/inter", &q, inter}};
  const auto serial = ExperimentEngine(EngineOptions{1}).run(jobs);
  const auto pooled = ExperimentEngine(EngineOptions{4}).run(jobs);
  ASSERT_EQ(serial.size(), pooled.size());
  bool any_faults = false;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial[i].sim, pooled[i].sim) << jobs[i].label;
    any_faults = any_faults || serial[i].sim.faults.any();
  }
  EXPECT_TRUE(any_faults);  // the injection actually fired
}

}  // namespace
}  // namespace flo::core
