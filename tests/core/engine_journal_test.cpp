// Checkpoint-journal robustness: resuming from damaged journals. A
// damaged line must be recomputed or the whole file refused loudly —
// never restored into the wrong cell and never a crash.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "ir/builder.hpp"

namespace flo::core {
namespace {

ir::Program tiny_program(std::int64_t n = 16) {
  return ir::ProgramBuilder("tiny")
      .array("A", {n, n})
      .nest("scan", {{0, n - 1}, {0, n - 1}}, 0)
      .read("A", {{1, 0}, {0, 1}})
      .done()
      .build();
}

std::string temp_journal(const char* name) {
  return testing::TempDir() + "/" + name + "." + std::to_string(::getpid()) +
         ".journal";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// Runs a 3-cell grid through a counting runner; returns runner calls.
int run_grid(const ir::Program& program, const std::string& journal,
             std::vector<JobResult>* results_out = nullptr) {
  ExperimentConfig base;
  std::vector<ExperimentJob> jobs;
  for (const char* label : {"cell-a", "cell-b", "cell-c"}) {
    ExperimentConfig config = base;
    // Distinct thread counts give each cell a distinct journal key.
    config.threads = 16 + 16 * (label[5] - 'a');
    jobs.push_back({label, &program, config});
  }
  std::atomic<int> runs{0};
  EngineOptions options;
  options.workers = 1;
  options.journal_path = journal;
  options.runner = [&runs](const ExperimentJob& job) -> ExperimentResult {
    runs.fetch_add(1);
    ExperimentResult r;
    r.sim.exec_time = static_cast<double>(job.config.threads);
    return r;
  };
  const auto results = ExperimentEngine(options).run_guarded(jobs);
  EXPECT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_FALSE(r.failed) << r.reason;
  if (results_out != nullptr) *results_out = results;
  return runs.load();
}

TEST(EngineJournalRobustnessTest, TruncatedFinalLineRecomputesOnlyThatCell) {
  const auto program = tiny_program();
  const std::string journal = temp_journal("truncated_tail");
  std::remove(journal.c_str());
  EXPECT_EQ(run_grid(program, journal), 3);

  // Simulate a crash mid-append: chop the tail of the last line.
  std::string contents = read_file(journal);
  ASSERT_GT(contents.size(), 20u);
  ASSERT_EQ(contents.back(), '\n');
  contents.resize(contents.size() - 15);
  write_file(journal, contents);

  std::vector<JobResult> results;
  EXPECT_EQ(run_grid(program, journal, &results), 1)
      << "exactly the damaged cell recomputes; intact cells restore";
  // Restored values must belong to the right cells (exec_time encodes the
  // cell's thread count — a mis-attribution would swap them).
  EXPECT_DOUBLE_EQ(results[0].result.sim.exec_time, 16.0);
  EXPECT_DOUBLE_EQ(results[1].result.sim.exec_time, 32.0);
  EXPECT_DOUBLE_EQ(results[2].result.sim.exec_time, 48.0);
  std::remove(journal.c_str());
}

TEST(EngineJournalRobustnessTest, InterleavedGarbageBytesAreSkipped) {
  const auto program = tiny_program();
  const std::string journal = temp_journal("garbage_lines");
  std::remove(journal.c_str());
  EXPECT_EQ(run_grid(program, journal), 3);

  // Sprinkle garbage between intact lines (torn writes, editor damage).
  std::istringstream in(read_file(journal));
  std::ostringstream out;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    out << line << '\n';
    if (first) {
      first = false;
      continue;  // keep the header line first and intact
    }
    out << "\x01\x02\xff torn write\n";
    out << "looks like-a-key but is not\n";
  }
  write_file(journal, out.str());

  EXPECT_EQ(run_grid(program, journal), 0)
      << "garbage lines must be skipped without poisoning intact cells";
  std::remove(journal.c_str());
}

TEST(EngineJournalRobustnessTest, CrashedMidRenameLeavesTmpThatIsIgnored) {
  const auto program = tiny_program();
  const std::string journal = temp_journal("mid_rename");
  std::remove(journal.c_str());
  EXPECT_EQ(run_grid(program, journal), 3);

  // atomic_write_file writes <path>.tmp.<pid> then renames. A SIGKILL in
  // between leaves the tmp file next to the committed journal; resume
  // must read only the committed file.
  const std::string tmp = journal + ".tmp." + std::to_string(::getpid());
  write_file(tmp, "flo-journal-v2 bogus-hash\ncell half-writ");

  EXPECT_EQ(run_grid(program, journal), 0);
  std::remove(journal.c_str());
  std::remove(tmp.c_str());
}

TEST(EngineJournalRobustnessTest, HeaderOnlyJournalRecomputesEverything) {
  const auto program = tiny_program();
  const std::string journal = temp_journal("header_only");
  std::remove(journal.c_str());
  EXPECT_EQ(run_grid(program, journal), 3);

  // Crash after the header made it out but before any cell line.
  const std::string contents = read_file(journal);
  write_file(journal, contents.substr(0, contents.find('\n') + 1));
  EXPECT_EQ(run_grid(program, journal), 3);
  std::remove(journal.c_str());
}

TEST(EngineJournalRobustnessTest, DamagedHeaderRefusesOrStartsFresh) {
  const auto program = tiny_program();
  const std::string journal = temp_journal("damaged_header");
  std::remove(journal.c_str());
  EXPECT_EQ(run_grid(program, journal), 3);

  // A header that no longer says flo-journal-* is not a journal: the
  // engine must start fresh (recompute), never guess at the stale lines.
  std::string contents = read_file(journal);
  write_file(journal, "garbage header\n" +
                          contents.substr(contents.find('\n') + 1));
  EXPECT_EQ(run_grid(program, journal), 3);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace flo::core
