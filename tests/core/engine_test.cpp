#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ir/builder.hpp"
#include "workloads/suite.hpp"

namespace flo::core {
namespace {

ir::Program tiny_program(std::int64_t n = 32) {
  return ir::ProgramBuilder("tiny")
      .array("A", {n, n})
      .nest("scan", {{0, n - 1}, {0, n - 1}}, 0, /*repeat=*/2)
      .read("A", {{1, 0}, {0, 1}})
      .write("A", {{0, 1}, {1, 0}})
      .done()
      .build();
}

TEST(ExperimentEngineTest, ResultsComeBackInJobOrder) {
  const auto p = tiny_program();
  ExperimentConfig base;
  ExperimentConfig inter = base;
  inter.scheme = Scheme::kInterNode;
  ExperimentEngine engine(EngineOptions{4});
  const auto results =
      engine.run({{"base", &p, base}, {"inter", &p, inter},
                  {"base-again", &p, base}});
  ASSERT_EQ(results.size(), 3u);
  // Identical jobs give identical results, and each slot matches what a
  // direct serial run_experiment of that job produces.
  EXPECT_EQ(results[0].sim, results[2].sim);
  EXPECT_EQ(results[0].sim, run_experiment(p, base).sim);
  EXPECT_EQ(results[1].sim, run_experiment(p, inter).sim);
}

TEST(ExperimentEngineTest, EmptyJobListIsFine) {
  ExperimentEngine engine(EngineOptions{4});
  EXPECT_TRUE(engine.run({}).empty());
}

TEST(ExperimentEngineTest, WorkerCountResolved) {
  EXPECT_EQ(ExperimentEngine(EngineOptions{3}).workers(), 3u);
  EXPECT_GE(ExperimentEngine(EngineOptions{0}).workers(), 1u);
}

TEST(ExperimentEngineTest, NullProgramThrowsWithLowestJobIndexFirst) {
  const auto p = tiny_program();
  ExperimentConfig base;
  ExperimentEngine engine(EngineOptions{4});
  EXPECT_THROW(
      engine.run({{"ok", &p, base}, {"bad", nullptr, base}}),
      std::invalid_argument);
}

TEST(ExperimentEngineTest, SharedCompilationMatchesIndependentCompilation) {
  const auto p = tiny_program();
  ExperimentConfig base;
  ExperimentConfig karma = base;
  karma.policy = storage::PolicyKind::kKarma;
  // Same compile signature (scheme/layouts), different policy: the shared
  // compile cache must not change the simulated results.
  const std::vector<ExperimentJob> jobs{{"lru", &p, base},
                                        {"karma", &p, karma}};
  ExperimentEngine shared(EngineOptions{2, /*share_compilations=*/true});
  ExperimentEngine isolated(EngineOptions{2, /*share_compilations=*/false});
  const auto a = shared.run(jobs);
  const auto b = isolated.run(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sim, b[i].sim) << jobs[i].label;
  }
}

TEST(ExperimentGridTest, ExpandsAppsOutermostSchemesInnermost) {
  const auto p = tiny_program();
  const auto q = tiny_program(16);
  ExperimentGrid grid;
  grid.apps = {{"p", &p}, {"q", &q}};
  grid.schemes = {Scheme::kDefault, Scheme::kInterNode};
  grid.policies = {storage::PolicyKind::kLruInclusive,
                   storage::PolicyKind::kKarma};
  const auto jobs = grid.expand();
  ASSERT_EQ(jobs.size(), 8u);
  EXPECT_EQ(jobs[0].program, &p);
  EXPECT_EQ(jobs[0].config.scheme, Scheme::kDefault);
  EXPECT_EQ(jobs[1].config.scheme, Scheme::kInterNode);
  EXPECT_EQ(jobs[2].config.policy, storage::PolicyKind::kKarma);
  EXPECT_EQ(jobs[4].program, &q);
}

TEST(ExperimentGridTest, EmptyAxesFallBackToBaseConfig) {
  const auto p = tiny_program();
  ExperimentGrid grid;
  grid.apps = {{"p", &p}};
  grid.base.policy = storage::PolicyKind::kDemoteLru;
  const auto jobs = grid.expand();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].config.policy, storage::PolicyKind::kDemoteLru);
}

// Satellite acceptance: 1 worker and N workers produce byte-identical
// SimulationResults over the full Table 2 grid (both schemes, every
// workload). SimulationResult::operator== is bitwise-strict, including
// per-thread times.
TEST(ExperimentEngineTest, DeterministicAcrossWorkerCounts) {
  const auto suite = workloads::workload_suite();
  ExperimentGrid grid;
  for (const auto& app : suite) grid.apps.push_back({app.name, &app.program});
  grid.schemes = {Scheme::kDefault, Scheme::kInterNode};
  const auto jobs = grid.expand();

  ExperimentEngine serial(EngineOptions{1});
  ExperimentEngine pooled(EngineOptions{4});
  const auto a = serial.run(jobs);
  const auto b = pooled.run(jobs);
  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(a[i].sim, b[i].sim) << jobs[i].label;
    EXPECT_EQ(a[i].plan.to_string(), b[i].plan.to_string()) << jobs[i].label;
  }
}

}  // namespace
}  // namespace flo::core
