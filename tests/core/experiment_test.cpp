#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace flo::core {
namespace {

/// A compact transposed-heavy program that benefits from the optimizer,
/// over a reduced topology so each experiment runs in milliseconds.
ExperimentConfig small_config() {
  ExperimentConfig config;
  config.topology.compute_nodes = 8;
  config.topology.io_nodes = 4;
  config.topology.storage_nodes = 2;
  config.topology.block_size = 64;
  config.topology.io_cache_bytes = 512;
  config.topology.storage_cache_bytes = 1024;
  config.threads = 8;
  // This suite pins the clock model's relative-timing claims (the
  // paper's model: no cross-thread disk contention). Under the event
  // core this micro-topology legitimately inverts some comparisons —
  // eight disjoint optimized streams over two spindles serialize while
  // the scattered baseline rides shared cache fills; the full
  // workloads still favor the optimizer under both cores.
  config.sim_core = storage::SimCoreKind::kClock;
  return config;
}

ir::Program bench_program() {
  return ir::ProgramBuilder("bench")
      .array("A", {64, 64})
      .nest("sweep", {{0, 63}, {0, 63}}, 0, 3)
      .read("A", {{0, 1}, {1, 0}})
      .done()
      .build();
}

TEST(ExperimentTest, InterNodeBeatsDefaultOnScatteredSweep) {
  auto config = small_config();
  const auto p = bench_program();
  const auto baseline = run_experiment(p, config);
  config.scheme = Scheme::kInterNode;
  const auto optimized = run_experiment(p, config);
  EXPECT_LT(optimized.sim.exec_time, baseline.sim.exec_time);
  EXPECT_LT(optimized.sim.io.misses(), baseline.sim.io.misses());
  EXPECT_EQ(optimized.plan.arrays.size(), 1u);
  EXPECT_TRUE(optimized.plan.arrays[0].optimized);
}

TEST(ExperimentTest, DefaultSchemeHasEmptyPlan) {
  const auto result = run_experiment(bench_program(), small_config());
  EXPECT_TRUE(result.plan.arrays.empty());
}

TEST(ExperimentTest, ThreadCountMustMatchComputeNodes) {
  auto config = small_config();
  config.threads = 4;
  EXPECT_THROW(run_experiment(bench_program(), config),
               std::invalid_argument);
}

TEST(ExperimentTest, LayerMaskedSchemesRun) {
  auto config = small_config();
  const auto p = bench_program();
  config.scheme = Scheme::kInterNodeIoOnly;
  const auto io_only = run_experiment(p, config);
  config.scheme = Scheme::kInterNodeStorageOnly;
  const auto storage_only = run_experiment(p, config);
  config.scheme = Scheme::kInterNode;
  const auto both = run_experiment(p, config);
  // All improve on default; both-layer targeting at least matches the
  // single layers on this workload.
  const auto base = run_experiment(p, small_config());
  EXPECT_LT(io_only.sim.exec_time, base.sim.exec_time);
  EXPECT_LT(storage_only.sim.exec_time, base.sim.exec_time);
  EXPECT_LE(both.sim.exec_time, 1.05 * io_only.sim.exec_time);
}

TEST(ExperimentTest, BaselineSchemesRun) {
  auto config = small_config();
  const auto p = bench_program();
  config.scheme = Scheme::kComputationMapping;
  const auto comp = run_experiment(p, config);
  EXPECT_GT(comp.sim.accesses, 0u);
  config.scheme = Scheme::kDimensionReindexing;
  const auto reindex = run_experiment(p, config);
  EXPECT_GT(reindex.profiler_runs, 0u);
  // Reindexing picks the best permutation; never worse than default.
  const auto base = run_experiment(p, small_config());
  EXPECT_LE(reindex.sim.exec_time, base.sim.exec_time * 1.0001);
}

TEST(ExperimentTest, PoliciesRun) {
  auto config = small_config();
  const auto p = bench_program();
  for (const auto policy :
       {storage::PolicyKind::kLruInclusive, storage::PolicyKind::kDemoteLru,
        storage::PolicyKind::kKarma}) {
    config.policy = policy;
    config.scheme = Scheme::kDefault;
    const auto base = run_experiment(p, config);
    config.scheme = Scheme::kInterNode;
    const auto opt = run_experiment(p, config);
    EXPECT_GT(base.sim.accesses, 0u) << storage::policy_name(policy);
    EXPECT_LT(opt.sim.exec_time, base.sim.exec_time)
        << storage::policy_name(policy);
  }
}

TEST(ExperimentTest, DeterministicResults) {
  auto config = small_config();
  config.scheme = Scheme::kInterNode;
  const auto p = bench_program();
  const auto a = run_experiment(p, config);
  const auto b = run_experiment(p, config);
  EXPECT_EQ(a.sim.exec_time, b.sim.exec_time);
  EXPECT_EQ(a.sim.io.hits, b.sim.io.hits);
}

TEST(ExperimentTest, MappingsProduceValidRuns) {
  auto config = small_config();
  const auto p = bench_program();
  for (const auto kind :
       {parallel::MappingKind::kIdentity, parallel::MappingKind::kPermutation2,
        parallel::MappingKind::kPermutation3,
        parallel::MappingKind::kPermutation4}) {
    config.mapping = kind;
    config.scheme = Scheme::kInterNode;
    const auto result = run_experiment(p, config);
    EXPECT_GT(result.sim.accesses, 0u) << parallel::mapping_name(kind);
  }
}

TEST(ExperimentTest, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kDefault), "default");
  EXPECT_STREQ(scheme_name(Scheme::kInterNode), "inter-node");
  EXPECT_STREQ(scheme_name(Scheme::kDimensionReindexing),
               "dimension reindexing [27]");
}

}  // namespace
}  // namespace flo::core
