// IoLowerBound tests: the synthetic cases pin the counting model
// (compulsory fills per I/O cache, repetition pressure beyond capacity,
// global footprint at the storage layer, the policy/fault gates) and the
// suite cases hold the end-to-end invariant the bench tables rely on —
// every simulated byte count sits at or above its computed lower bound.
#include "core/io_lower_bound.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.hpp"
#include "storage/topology.hpp"
#include "storage/trace_source.hpp"
#include "workloads/suite.hpp"

namespace flo::core {
namespace {

storage::StorageTopology tiny_topology(std::uint64_t io_cache_blocks) {
  storage::TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 64;
  c.io_cache_bytes = io_cache_blocks * c.block_size;
  c.storage_cache_bytes = 16 * c.block_size;
  return storage::StorageTopology(c);
}

/// One phase, one file of `blocks` blocks; per_thread[t] holds thread t's
/// events.
storage::TraceProgram one_phase(std::vector<storage::ThreadTrace> per_thread,
                                std::uint64_t blocks, std::uint32_t repeat) {
  storage::TraceProgram trace;
  trace.file_blocks = {blocks};
  trace.phases.push_back({std::move(per_thread), repeat});
  return trace;
}

TEST(IoLowerBoundTest, CompulsoryFillsOnly) {
  // 8 distinct blocks, touched once by one thread: the bound is exactly
  // the compulsory fills at both layers.
  const auto trace =
      one_phase({{{0, 0, 1, false, 8}}}, /*blocks=*/8, /*repeat=*/1);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(/*io_cache_blocks=*/16);
  const IoBound bound = compute_io_lower_bound(
      source, {0}, topology, storage::PolicyKind::kLruInclusive);
  EXPECT_EQ(bound.io_bound_bytes, 8u * 64u);
  EXPECT_EQ(bound.storage_bound_bytes, 8u * 64u);
}

TEST(IoLowerBoundTest, RepeatsBeyondCapacityRefill) {
  // 8 distinct blocks replayed 3 times through a 4-block I/O cache: at
  // most 4 blocks survive each barrier, so every replay refills at least
  // 8 - 4 = 4 blocks. Bound = 8 + 2 * 4 = 16 fills. The storage layer's
  // bound stays compulsory-only (its model ignores repetition).
  const auto trace =
      one_phase({{{0, 0, 1, false, 8}}}, /*blocks=*/8, /*repeat=*/3);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(/*io_cache_blocks=*/4);
  const IoBound bound = compute_io_lower_bound(
      source, {0}, topology, storage::PolicyKind::kLruInclusive);
  EXPECT_EQ(bound.io_bound_bytes, 16u * 64u);
  EXPECT_EQ(bound.storage_bound_bytes, 8u * 64u);
}

TEST(IoLowerBoundTest, RepeatsWithinCapacityAddNothing) {
  const auto trace =
      one_phase({{{0, 0, 1, false, 3}}}, /*blocks=*/8, /*repeat=*/5);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(/*io_cache_blocks=*/4);
  const IoBound bound = compute_io_lower_bound(
      source, {0}, topology, storage::PolicyKind::kLruInclusive);
  EXPECT_EQ(bound.io_bound_bytes, 3u * 64u);
}

TEST(IoLowerBoundTest, CountsPerIoCacheButOncePerStorage) {
  // Two threads on different I/O nodes reading the same 4 blocks: each
  // I/O cache takes its own compulsory fills (8 total) while the shared
  // storage cache needs only the 4 distinct blocks.
  const storage::ThreadTrace same = {{0, 0, 1, false, 4}};
  const auto trace = one_phase({same, same}, /*blocks=*/4, /*repeat=*/1);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(/*io_cache_blocks=*/16);
  const IoBound bound = compute_io_lower_bound(
      source, {0, 1}, topology, storage::PolicyKind::kLruInclusive);
  EXPECT_EQ(bound.io_bound_bytes, 8u * 64u);
  EXPECT_EQ(bound.storage_bound_bytes, 4u * 64u);
}

TEST(IoLowerBoundTest, WritesFillLikeReads) {
  // The simulator write-allocates, so written blocks are compulsory fills
  // exactly like read ones.
  const auto trace =
      one_phase({{{0, 0, 1, true, 6}}}, /*blocks=*/8, /*repeat=*/1);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(/*io_cache_blocks=*/16);
  const IoBound bound = compute_io_lower_bound(
      source, {0}, topology, storage::PolicyKind::kLruInclusive);
  EXPECT_EQ(bound.io_bound_bytes, 6u * 64u);
  EXPECT_EQ(bound.storage_bound_bytes, 6u * 64u);
}

TEST(IoLowerBoundTest, KarmaClaimsZero) {
  // KARMA places blocks at exactly one level from hints; neither layer's
  // fill traffic is bounded below by the inclusive-LRU model, so the
  // calculator makes no claim at all.
  const auto trace =
      one_phase({{{0, 0, 1, false, 8}}}, /*blocks=*/8, /*repeat=*/1);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(/*io_cache_blocks=*/4);
  const IoBound bound = compute_io_lower_bound(source, {0}, topology,
                                               storage::PolicyKind::kKarma);
  EXPECT_EQ(bound.io_bound_bytes, 0u);
  EXPECT_EQ(bound.storage_bound_bytes, 0u);
}

TEST(IoLowerBoundTest, DemoteLruGatesOnlyStorage) {
  // DEMOTE-LRU fills the storage cache via demotions rather than on the
  // read path, so only the storage side of the bound is withdrawn.
  const auto trace =
      one_phase({{{0, 0, 1, false, 8}}}, /*blocks=*/8, /*repeat=*/1);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(/*io_cache_blocks=*/4);
  const IoBound bound = compute_io_lower_bound(
      source, {0}, topology, storage::PolicyKind::kDemoteLru);
  EXPECT_EQ(bound.io_bound_bytes, 8u * 64u);
  EXPECT_EQ(bound.storage_bound_bytes, 0u);
}

TEST(IoLowerBoundTest, FaultedTopologyClaimsZero) {
  const auto trace =
      one_phase({{{0, 0, 1, false, 8}}}, /*blocks=*/8, /*repeat=*/1);
  const storage::MaterializedTraceSource source(trace);
  storage::TopologyConfig c = tiny_topology(4).config();
  c.fault.enabled = true;
  const storage::StorageTopology faulted(c);
  const IoBound bound = compute_io_lower_bound(
      source, {0}, faulted, storage::PolicyKind::kLruInclusive);
  EXPECT_EQ(bound.io_bound_bytes, 0u);
  EXPECT_EQ(bound.storage_bound_bytes, 0u);
}

TEST(IoLowerBoundTest, ShortThreadVectorThrows) {
  const auto trace = one_phase({{{0, 0, 1, false, 2}}, {{0, 2, 1, false, 2}}},
                               /*blocks=*/4, /*repeat=*/1);
  const storage::MaterializedTraceSource source(trace);
  const auto topology = tiny_topology(4);
  EXPECT_THROW(compute_io_lower_bound(source, {0}, topology,
                                      storage::PolicyKind::kLruInclusive),
               std::invalid_argument);
}

// End-to-end invariant over the paper suite: run_experiment threads the
// bound into SimulationResult, the bound is non-trivial, and the simulator
// never beats it. This is the same invariant BM_SolverAblation enforces,
// pinned here at unit-test granularity.
TEST(IoLowerBoundSuiteTest, AchievedNeverBeatsBound) {
  for (const auto& app : workloads::workload_suite()) {
    SCOPED_TRACE(app.name);
    for (const Scheme scheme : {Scheme::kDefault, Scheme::kInterNode}) {
      ExperimentConfig config;
      config.scheme = scheme;
      const ExperimentResult r = run_experiment(app.program, config);
      EXPECT_GT(r.sim.io_bound_bytes, 0u);
      EXPECT_GT(r.sim.storage_bound_bytes, 0u);
      EXPECT_GE(r.sim.achieved_bytes(), r.sim.bound_bytes());
      EXPECT_GE(r.sim.achieved_ratio(), 1.0);
    }
  }
}

TEST(IoLowerBoundSuiteTest, GatedPoliciesReportNoClaim) {
  const auto app = workloads::workload_by_name("swim");
  ExperimentConfig config;
  config.policy = storage::PolicyKind::kKarma;
  const ExperimentResult r = run_experiment(app.program, config);
  EXPECT_EQ(r.sim.bound_bytes(), 0u);
  // "No claim" is reported as ratio 0, never as a spurious achieved/0.
  EXPECT_EQ(r.sim.achieved_ratio(), 0.0);
}

}  // namespace
}  // namespace flo::core
