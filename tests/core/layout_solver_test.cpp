// LayoutSolver seam tests: name/parse round-trips, the guarantee that the
// unimodular backend is byte-identical to calling Step I directly (and
// therefore to every plan the optimizer produced before the seam existed),
// and the constraint-network dominance invariant on the paper suite.
#include "core/layout_solver.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/optimizer.hpp"
#include "ir/builder.hpp"
#include "layout/constraint_network.hpp"
#include "layout/partitioning.hpp"
#include "linalg/unimodular.hpp"
#include "workloads/suite.hpp"

namespace flo::core {
namespace {

storage::StorageTopology small_topology() {
  storage::TopologyConfig c;
  c.compute_nodes = 8;
  c.io_nodes = 4;
  c.storage_nodes = 2;
  c.block_size = 64;
  c.io_cache_bytes = 1024;
  c.storage_cache_bytes = 2048;
  return storage::StorageTopology(c);
}

/// Asserts a finalized partitioning is internally consistent regardless of
/// which backend produced it.
void expect_valid(const layout::ArrayPartitioning& p, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_LE(p.satisfied_weight, p.total_weight);
  EXPECT_LE(p.satisfied_groups, p.total_groups);
  if (!p.partitioned) return;
  EXPECT_GT(p.alpha, 0);
  EXPECT_TRUE(linalg::is_unimodular(p.transform));
  ASSERT_LT(p.partition_dim, p.transform.rows());
  EXPECT_EQ(p.hyperplane, p.transform.row(p.partition_dim));
  EXPECT_LE(p.s_min, p.s_max);
  EXPECT_GT(p.satisfied_weight, 0);
}

void expect_same_partitioning(const layout::ArrayPartitioning& a,
                              const layout::ArrayPartitioning& b) {
  EXPECT_EQ(a.partitioned, b.partitioned);
  EXPECT_EQ(a.transform, b.transform);
  EXPECT_EQ(a.hyperplane, b.hyperplane);
  EXPECT_EQ(a.partition_dim, b.partition_dim);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.primary_nest, b.primary_nest);
  EXPECT_EQ(a.s_min, b.s_min);
  EXPECT_EQ(a.s_max, b.s_max);
  EXPECT_EQ(a.satisfied_weight, b.satisfied_weight);
  EXPECT_EQ(a.total_weight, b.total_weight);
}

TEST(LayoutSolverTest, NamesAndParseRoundTrip) {
  EXPECT_STREQ(solver_name(SolverKind::kUnimodular), "unimodular");
  EXPECT_STREQ(solver_name(SolverKind::kConstraintNetwork), "constraint");
  EXPECT_EQ(parse_solver("unimodular"), SolverKind::kUnimodular);
  EXPECT_EQ(parse_solver("constraint"), SolverKind::kConstraintNetwork);
  EXPECT_EQ(parse_solver(""), std::nullopt);
  EXPECT_EQ(parse_solver("simplex"), std::nullopt);
  for (const SolverKind kind :
       {SolverKind::kUnimodular, SolverKind::kConstraintNetwork}) {
    EXPECT_EQ(parse_solver(solver_name(kind)), kind);
    EXPECT_STREQ(solver_for(kind).name(), solver_name(kind));
  }
}

TEST(LayoutSolverTest, SolverForReturnsSingletons) {
  EXPECT_EQ(&solver_for(SolverKind::kUnimodular),
            &solver_for(SolverKind::kUnimodular));
  EXPECT_EQ(&solver_for(SolverKind::kConstraintNetwork),
            &solver_for(SolverKind::kConstraintNetwork));
  EXPECT_NE(&solver_for(SolverKind::kUnimodular),
            &solver_for(SolverKind::kConstraintNetwork));
}

TEST(LayoutSolverTest, DefaultConfigsFollowProcessDefault) {
  // OptimizerOptions and ExperimentConfig both default to the FLO_SOLVER
  // process-wide choice, so the bench/service/tool layers agree without
  // each plumbing the variable separately.
  EXPECT_EQ(OptimizerOptions{}.solver, solver_from_env());
  EXPECT_EQ(ExperimentConfig{}.solver, solver_from_env());
}

// The reference backend is a pass-through: for every array of every suite
// application it must reproduce layout::partition_array field for field.
TEST(LayoutSolverTest, UnimodularBackendMatchesPartitionArray) {
  const LayoutSolver& uni = solver_for(SolverKind::kUnimodular);
  for (const auto& app : workloads::workload_suite()) {
    SCOPED_TRACE(app.name);
    const parallel::ParallelSchedule schedule(app.program, 64);
    for (ir::ArrayId a = 0; a < app.program.arrays().size(); ++a) {
      expect_same_partitioning(
          uni.solve(app.program, a, schedule, {}),
          layout::partition_array(app.program, a, schedule));
    }
  }
}

// Selecting the unimodular backend explicitly must yield plans
// byte-identical to the default optimizer path (the flo_opt
// --solver=unimodular acceptance bar, checked here at the library level).
TEST(LayoutSolverTest, ExplicitUnimodularPlanIdenticalToDefault) {
  if (solver_from_env() != SolverKind::kUnimodular) {
    GTEST_SKIP() << "FLO_SOLVER overrides the default backend; the "
                    "identity under test only holds for the stock default";
  }
  const FileLayoutOptimizer optimizer(small_topology());
  OptimizerOptions explicit_uni;
  explicit_uni.solver = SolverKind::kUnimodular;
  for (const auto& app : workloads::workload_suite()) {
    SCOPED_TRACE(app.name);
    const parallel::ParallelSchedule schedule(app.program, 8);
    const auto def = optimizer.optimize(app.program, schedule);
    const auto uni = optimizer.optimize(app.program, schedule, explicit_uni);
    EXPECT_EQ(def.plan.to_string(), uni.plan.to_string());
  }
}

// Dominance: the constraint network sees the greedy's hyperplane as one of
// its candidates, so it can never partition fewer arrays or satisfy less
// reference weight than the unimodular greedy.
TEST(LayoutSolverTest, ConstraintNeverSatisfiesLessThanGreedy) {
  for (const auto& app : workloads::workload_suite()) {
    SCOPED_TRACE(app.name);
    const parallel::ParallelSchedule schedule(app.program, 64);
    for (ir::ArrayId a = 0; a < app.program.arrays().size(); ++a) {
      const auto uni = layout::partition_array(app.program, a, schedule);
      const auto con =
          layout::solve_constraint_network(app.program, a, schedule);
      expect_valid(uni, "unimodular");
      expect_valid(con, "constraint");
      EXPECT_EQ(uni.total_weight, con.total_weight);
      EXPECT_GE(con.satisfied_weight, uni.satisfied_weight);
      if (uni.partitioned) EXPECT_TRUE(con.partitioned);
    }
  }
}

ir::Program mixed_program() {
  return ir::ProgramBuilder("mixed")
      .array("big", {64, 64})
      .array("shared", {32, 32})
      .nest("n1", {{0, 63}, {0, 63}}, 0)
      .read("big", {{0, 1}, {1, 0}})
      .done()
      .nest("n2", {{0, 31}, {0, 31}, {0, 31}}, 0)
      .read("shared", {{0, 0, 1}, {0, 1, 0}})
      .done()
      .build();
}

// Degenerate input 1: a single-thread schedule. Partitioning is still
// well-defined (one thread owns every slab); both backends must finalize
// without tripping over the trivial thread decomposition.
TEST(LayoutSolverDegenerateTest, SingleThreadSchedule) {
  const auto p = mixed_program();
  const parallel::ParallelSchedule schedule(p, 1);
  for (ir::ArrayId a = 0; a < p.arrays().size(); ++a) {
    const auto uni = layout::partition_array(p, a, schedule);
    const auto con = layout::solve_constraint_network(p, a, schedule);
    expect_valid(uni, "unimodular");
    expect_valid(con, "constraint");
    EXPECT_GE(con.satisfied_weight, uni.satisfied_weight);
    if (uni.partitioned) EXPECT_TRUE(con.partitioned);
  }
}

// Degenerate input 2: single-dimension arrays. The hyperplane space is
// one-dimensional, so Step I either finds d = (1) or nothing at all.
TEST(LayoutSolverDegenerateTest, SingleDimensionArrays) {
  // good: indexed by the parallel loop only -> d = (1) works.
  // bad: indexed by the sequential loop -> every thread sweeps the whole
  // array, no nonzero d separates threads.
  const auto p = ir::ProgramBuilder("one_dim")
                     .array("good", {64})
                     .array("bad", {64})
                     .nest("n", {{0, 63}, {0, 63}}, 0)
                     .read("good", {{1, 0}})
                     .read("bad", {{0, 1}})
                     .done()
                     .build();
  const parallel::ParallelSchedule schedule(p, 8);
  for (const SolverKind kind :
       {SolverKind::kUnimodular, SolverKind::kConstraintNetwork}) {
    SCOPED_TRACE(solver_name(kind));
    const auto good = solver_for(kind).solve(p, 0, schedule, {});
    expect_valid(good, "good");
    ASSERT_TRUE(good.partitioned);
    EXPECT_EQ(good.hyperplane, (linalg::IntVector{1}));
    EXPECT_EQ(good.alpha, 1);
    const auto bad = solver_for(kind).solve(p, 1, schedule, {});
    expect_valid(bad, "bad");
    EXPECT_FALSE(bad.partitioned);
  }
}

// Degenerate input 3: the unweighted ablation option. Both backends must
// honor it (program-order group consideration) and the dominance invariant
// must survive, since the constraint network anchors on the same greedy.
TEST(LayoutSolverDegenerateTest, UnweightedOptions) {
  layout::PartitioningOptions unweighted;
  unweighted.weighted = false;
  for (const auto& app : workloads::workload_suite()) {
    SCOPED_TRACE(app.name);
    const parallel::ParallelSchedule schedule(app.program, 64);
    for (ir::ArrayId a = 0; a < app.program.arrays().size(); ++a) {
      const auto uni =
          layout::partition_array(app.program, a, schedule, unweighted);
      const auto con = layout::solve_constraint_network(app.program, a,
                                                        schedule, unweighted);
      expect_valid(uni, "unimodular");
      expect_valid(con, "constraint");
      EXPECT_GE(con.satisfied_weight, uni.satisfied_weight);
      if (uni.partitioned) EXPECT_TRUE(con.partitioned);
    }
  }
}

}  // namespace
}  // namespace flo::core
