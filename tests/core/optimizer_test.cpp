#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "layout/internode.hpp"

namespace flo::core {
namespace {

storage::StorageTopology small_topology() {
  storage::TopologyConfig c;
  c.compute_nodes = 8;
  c.io_nodes = 4;
  c.storage_nodes = 2;
  c.block_size = 64;
  c.io_cache_bytes = 1024;
  c.storage_cache_bytes = 2048;
  return storage::StorageTopology(c);
}

ir::Program mixed_program() {
  // big: partitionable and larger than one I/O cache.
  // shared: unpartitionable. tiny: partitionable but profitability-skipped.
  return ir::ProgramBuilder("mixed")
      .array("big", {64, 64})
      .array("shared", {32, 32})
      .array("tiny", {8, 8})
      .nest("n1", {{0, 63}, {0, 63}}, 0)
      .read("big", {{0, 1}, {1, 0}})
      .done()
      .nest("n2", {{0, 31}, {0, 31}, {0, 31}}, 0)
      .read("shared", {{0, 0, 1}, {0, 1, 0}})
      .done()
      .nest("n3", {{0, 7}, {0, 7}}, 0)
      .read("tiny", {{1, 0}, {0, 1}})
      .done()
      .build();
}

TEST(OptimizerTest, ProducesLayoutForEveryArray) {
  const FileLayoutOptimizer optimizer(small_topology());
  const auto p = mixed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto result = optimizer.optimize(p, schedule);
  ASSERT_EQ(result.layouts.size(), 3u);
  for (const auto& layout : result.layouts) {
    ASSERT_NE(layout, nullptr);
  }
}

TEST(OptimizerTest, OnlyProfitablePartitionableArraysOptimized) {
  const FileLayoutOptimizer optimizer(small_topology());
  const auto p = mixed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto result = optimizer.optimize(p, schedule);
  // big (32 KiB > 1 KiB I/O cache, transposed): optimized.
  EXPECT_TRUE(result.plan.arrays[0].optimized);
  EXPECT_NE(dynamic_cast<const layout::InterNodeLayout*>(
                result.layouts[0].get()),
            nullptr);
  // shared: Step I fails.
  EXPECT_FALSE(result.plan.arrays[1].optimized);
  EXPECT_FALSE(result.plan.arrays[1].partitioning.partitioned);
  // tiny: partitionable (Step I succeeds) but fits one I/O cache -> kept
  // canonical by the profitability test.
  EXPECT_FALSE(result.plan.arrays[2].optimized);
  EXPECT_TRUE(result.plan.arrays[2].partitioning.partitioned);
}

TEST(OptimizerTest, PlanCountsOptimizedArrays) {
  const FileLayoutOptimizer optimizer(small_topology());
  const auto p = mixed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto result = optimizer.optimize(p, schedule);
  EXPECT_EQ(result.plan.optimized_count(), 1u);
  EXPECT_NEAR(result.plan.optimized_fraction(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(result.plan.program_name, "mixed");
}

TEST(OptimizerTest, LayerMaskChangesPattern) {
  const FileLayoutOptimizer optimizer(small_topology());
  const auto p = mixed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  OptimizerOptions io_only;
  io_only.mask = layout::LayerMask::kIoOnly;
  const auto both = optimizer.optimize(p, schedule);
  const auto io = optimizer.optimize(p, schedule, io_only);
  // Both plus virtual root = 3 pattern sizes; I/O-only = 2.
  EXPECT_EQ(both.plan.arrays[0].pattern_elements.size(), 3u);
  EXPECT_EQ(io.plan.arrays[0].pattern_elements.size(), 2u);
}

TEST(OptimizerTest, PlanRecordsChunkGeometry) {
  const FileLayoutOptimizer optimizer(small_topology());
  const auto p = mixed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto result = optimizer.optimize(p, schedule);
  const auto& plan = result.plan.arrays[0];
  EXPECT_GT(plan.chunk_elements, 0u);
  const auto* internode = dynamic_cast<const layout::InterNodeLayout*>(
      result.layouts[0].get());
  ASSERT_NE(internode, nullptr);
  EXPECT_EQ(plan.chunk_elements, internode->pattern().chunk_elements());
}

}  // namespace
}  // namespace flo::core
