#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flo::core {
namespace {

storage::SimulationResult make_result(double exec, std::uint64_t io_lookups,
                                      std::uint64_t io_hits,
                                      std::uint64_t st_lookups,
                                      std::uint64_t st_hits) {
  storage::SimulationResult r;
  r.exec_time = exec;
  r.io.lookups = io_lookups;
  r.io.hits = io_hits;
  r.storage.lookups = st_lookups;
  r.storage.hits = st_hits;
  return r;
}

// The zero-baseline convention every bench table relies on: ratios against
// a zero denominator are "no change" (1.0), empty-set averages are 0.0 —
// never NaN/inf.
TEST(NormalizedRatioTest, ZeroDenominatorMeansNoChange) {
  EXPECT_DOUBLE_EQ(normalized_ratio(8.0, 10.0), 0.8);
  EXPECT_DOUBLE_EQ(normalized_ratio(5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(normalized_ratio(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(normalized_ratio(0.0, 4.0), 0.0);
}

TEST(SafeAverageTest, EmptyGroupIsZeroNotNaN) {
  EXPECT_DOUBLE_EQ(safe_average(6.0, 3), 2.0);
  EXPECT_DOUBLE_EQ(safe_average(0.0, 0), 0.0);
  // The Fig. 7(a) regression: an empty paper group must not print NaN.
  EXPECT_DOUBLE_EQ(safe_average(1.5, 0), 0.0);
  EXPECT_FALSE(std::isnan(safe_average(1.5, 0)));
}

TEST(AppMeasurementTest, NormalizedExecAndImprovement) {
  AppMeasurement m{"app", make_result(10, 100, 50, 50, 25),
                   make_result(8, 100, 80, 20, 15)};
  EXPECT_DOUBLE_EQ(m.normalized_exec(), 0.8);
  EXPECT_NEAR(m.improvement(), 0.2, 1e-12);
}

TEST(AppMeasurementTest, NormalizedMissCounts) {
  // Default: 50 io misses, 25 storage misses. Optimized: 20 and 5.
  AppMeasurement m{"app", make_result(10, 100, 50, 50, 25),
                   make_result(8, 100, 80, 20, 15)};
  EXPECT_DOUBLE_EQ(m.normalized_io_miss(), 0.4);
  EXPECT_DOUBLE_EQ(m.normalized_storage_miss(), 0.2);
}

TEST(AppMeasurementTest, ZeroBaselineGuards) {
  AppMeasurement m{"app", make_result(0, 0, 0, 0, 0),
                   make_result(0, 0, 0, 0, 0)};
  EXPECT_DOUBLE_EQ(m.normalized_exec(), 1.0);
  EXPECT_DOUBLE_EQ(m.normalized_io_miss(), 1.0);
  EXPECT_DOUBLE_EQ(m.normalized_storage_miss(), 1.0);
}

TEST(AverageImprovementTest, ArithmeticMean) {
  std::vector<AppMeasurement> rows;
  rows.push_back({"a", make_result(10, 1, 0, 1, 0),
                  make_result(9, 1, 0, 1, 0)});
  rows.push_back({"b", make_result(10, 1, 0, 1, 0),
                  make_result(7, 1, 0, 1, 0)});
  EXPECT_NEAR(average_improvement(rows), 0.2, 1e-12);
  EXPECT_EQ(average_improvement({}), 0.0);
}

TEST(DescribeConfigTest, MentionsComponents) {
  ExperimentConfig config;
  config.scheme = Scheme::kInterNode;
  config.policy = storage::PolicyKind::kKarma;
  const std::string s = describe_config(config);
  EXPECT_NE(s.find("(64, 16, 4)"), std::string::npos);
  EXPECT_NE(s.find("KARMA"), std::string::npos);
  EXPECT_NE(s.find("inter-node"), std::string::npos);
  EXPECT_NE(s.find("Mapping I"), std::string::npos);
}

}  // namespace
}  // namespace flo::core
