#include "core/tenant.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ir/builder.hpp"

namespace flo::core {
namespace {

TEST(JainFairnessTest, ZeroBaselineConventions) {
  // Documented conventions: empty and all-zero inputs read as perfectly
  // fair (1.0), never NaN.
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(JainFairnessTest, EvenAndUnevenShares) {
  EXPECT_DOUBLE_EQ(jain_fairness({2.0, 2.0, 2.0}), 1.0);
  // (1+3)^2 / (2 * (1+9)) = 16/20 = 0.8
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 3.0}), 0.8);
  // One tenant absorbs everything: the index bottoms out at 1/n.
  EXPECT_DOUBLE_EQ(jain_fairness({4.0, 0.0}), 0.5);
}

TEST(TenantSlowdownTest, ZeroSoloBaselineReadsAsUnchanged) {
  EXPECT_DOUBLE_EQ(tenant_slowdown(3.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(tenant_slowdown(3.0, 2.0), 1.5);
}

TEST(SlowdownPercentileTest, EmptyVectorReadsAsUnchanged) {
  EXPECT_DOUBLE_EQ(slowdown_percentile({}, 99.0), 1.0);
  EXPECT_DOUBLE_EQ(slowdown_percentile({}, 0.0), 1.0);
}

TEST(SlowdownPercentileTest, SingleValueIsEveryPercentile) {
  EXPECT_DOUBLE_EQ(slowdown_percentile({1.7}, 0.0), 1.7);
  EXPECT_DOUBLE_EQ(slowdown_percentile({1.7}, 50.0), 1.7);
  EXPECT_DOUBLE_EQ(slowdown_percentile({1.7}, 99.0), 1.7);
  EXPECT_DOUBLE_EQ(slowdown_percentile({1.7}, 100.0), 1.7);
}

TEST(SlowdownPercentileTest, NearestRankOverUnsortedInput) {
  const std::vector<double> values = {1.4, 1.1, 1.3, 1.2};
  EXPECT_DOUBLE_EQ(slowdown_percentile(values, 100.0), 1.4);
  // Nearest-rank: ceil(0.5 * 4) = rank 2 of the sorted vector.
  EXPECT_DOUBLE_EQ(slowdown_percentile(values, 50.0), 1.2);
  EXPECT_DOUBLE_EQ(slowdown_percentile(values, 25.0), 1.1);
  // With few tenants p99 is the max — the honest small-n reading.
  EXPECT_DOUBLE_EQ(slowdown_percentile(values, 99.0), 1.4);
}

TEST(SlowdownPercentileTest, ZeroSlowdownVectorStaysZero) {
  // Degenerate all-zero vectors pass through, matching jain_fairness's
  // treatment of runs that cost nothing.
  EXPECT_DOUBLE_EQ(slowdown_percentile({0.0, 0.0, 0.0}, 99.0), 0.0);
}

ir::Program make_sweep(const char* name, std::int64_t rows,
                       std::int64_t cols) {
  ir::ProgramBuilder pb(name);
  pb.array("A", {rows, cols});
  pb.nest("sweep", {{0, rows - 1}, {0, cols - 1}}, 0)
      .read("A", {{1, 0}, {0, 1}})
      .done();
  return pb.build();
}

TEST(RunMultiTenantTest, RejectsDegenerateJobLists) {
  EXPECT_THROW(run_multi_tenant({}), std::invalid_argument);
  TenantJob job;  // program left null
  EXPECT_THROW(run_multi_tenant({job}), std::invalid_argument);
}

TEST(RunMultiTenantTest, RejectsKarmaComposition) {
  const ir::Program program = make_sweep("solo", 256, 256);
  TenantJob job;
  job.program = &program;
  job.config.policy = storage::PolicyKind::kKarma;
  EXPECT_THROW(run_multi_tenant({job, job}), std::invalid_argument);
}

TEST(RunMultiTenantTest, TwoTenantSmoke) {
  const ir::Program first = make_sweep("first", 256, 512);
  const ir::Program second = make_sweep("second", 128, 512);
  TenantJob a;
  a.label = "first";
  a.program = &first;
  TenantJob b;
  b.label = "second";
  b.program = &second;
  const MultiTenantResult result = run_multi_tenant({a, b});

  ASSERT_EQ(result.tenants.size(), 2u);
  ASSERT_EQ(result.shared.tenants.size(), 2u);
  EXPECT_EQ(result.tenants[0].label, "first");
  EXPECT_EQ(result.tenants[1].label, "second");

  // The shared run carries every tenant access: the interleaved trace is
  // the union of the solo traces.
  const std::uint64_t solo_accesses = result.tenants[0].solo.accesses +
                                      result.tenants[1].solo.accesses;
  EXPECT_EQ(result.shared.accesses, solo_accesses);
  const std::uint64_t slice_accesses = result.shared.tenants[0].accesses +
                                       result.shared.tenants[1].accesses;
  EXPECT_EQ(result.shared.accesses, slice_accesses);

  for (const TenantOutcome& outcome : result.tenants) {
    EXPECT_GT(outcome.solo_busy, 0.0);
    EXPECT_GT(outcome.shared_busy, 0.0);
    // Sharing caches can only interfere or leave a tenant alone; allow a
    // whisker of FP slack below 1.
    EXPECT_GE(outcome.slowdown, 0.99);
  }
  EXPECT_GE(result.mean_slowdown, 0.99);
  EXPECT_GT(result.fairness, 0.0);
  EXPECT_LE(result.fairness, 1.0);
}

}  // namespace
}  // namespace flo::core
