// Cross-module integration tests: run real (reduced) workloads through the
// full pipeline and check the paper's qualitative claims as invariants.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "layout/canonical.hpp"
#include "trace/analysis.hpp"
#include "trace/generator.hpp"
#include "workloads/suite.hpp"

namespace flo {
namespace {

core::ExperimentConfig default_config(core::Scheme scheme) {
  core::ExperimentConfig config;
  config.scheme = scheme;
  // The paper's qualitative claims are claims about its model — the
  // clock core. Pin it so a FLO_SIM=event environment doesn't re-grade
  // Fig. 7 under contention-aware timings (where cache-pressure sweeps
  // shift, legitimately, by a few percent).
  config.sim_core = storage::SimCoreKind::kClock;
  return config;
}

TEST(EndToEndTest, QioImprovesUnderInterNodeLayout) {
  const auto app = workloads::workload_by_name("qio");
  const auto base =
      core::run_experiment(app.program, default_config(core::Scheme::kDefault));
  const auto opt = core::run_experiment(
      app.program, default_config(core::Scheme::kInterNode));
  // Group 3: significant benefit.
  EXPECT_LT(opt.sim.exec_time, 0.9 * base.sim.exec_time);
  EXPECT_LT(opt.sim.io.misses(), base.sim.io.misses());
}

TEST(EndToEndTest, CcVer1DoesNotBenefit) {
  const auto app = workloads::workload_by_name("cc-ver-1");
  const auto base =
      core::run_experiment(app.program, default_config(core::Scheme::kDefault));
  const auto opt = core::run_experiment(
      app.program, default_config(core::Scheme::kInterNode));
  // Group 1: within a few percent of the default execution.
  EXPECT_NEAR(opt.sim.exec_time / base.sim.exec_time, 1.0, 0.05);
}

TEST(EndToEndTest, OptimizedFootprintShrinks) {
  // The Fig. 2 claim: the optimized layout reduces the number of distinct
  // blocks each thread touches.
  const auto app = workloads::workload_by_name("hf");
  const storage::StorageTopology topo(storage::TopologyConfig::paper_default());
  const parallel::ParallelSchedule schedule(app.program, 64);
  const core::FileLayoutOptimizer optimizer(topo);
  const auto opt = optimizer.optimize(app.program, schedule);
  const auto default_trace = trace::generate_trace(
      app.program, schedule, layout::default_layouts(app.program), topo);
  const auto opt_trace =
      trace::generate_trace(app.program, schedule, opt.layouts, topo);
  const auto before = trace::footprint_stats(default_trace, 64);
  const auto after = trace::footprint_stats(opt_trace, 64);
  EXPECT_LT(after.mean_distinct(), before.mean_distinct());
}

TEST(EndToEndTest, OptimizedFractionNearPaperAverage) {
  // Paper: "our approach was able to optimize about 72% of these arrays on
  // average". Count Step-I-partitionable arrays across the suite.
  const storage::StorageTopology topo(storage::TopologyConfig::paper_default());
  const core::FileLayoutOptimizer optimizer(topo);
  std::size_t total = 0, partitionable = 0;
  for (const auto& app : workloads::workload_suite()) {
    const parallel::ParallelSchedule schedule(app.program, 64);
    const auto result = optimizer.optimize(app.program, schedule);
    for (const auto& plan : result.plan.arrays) {
      ++total;
      if (plan.partitioning.partitioned) ++partitionable;
    }
  }
  const double fraction =
      static_cast<double>(partitionable) / static_cast<double>(total);
  EXPECT_GT(fraction, 0.55);
  EXPECT_LT(fraction, 0.95);
}

TEST(EndToEndTest, SmallerCachesIncreaseBenefit) {
  // Fig. 7(c): halving cache capacities increases the improvement.
  const auto app = workloads::workload_by_name("applu");
  auto small = default_config(core::Scheme::kDefault);
  small.topology.io_cache_bytes /= 2;
  small.topology.storage_cache_bytes /= 2;
  auto small_opt = small;
  small_opt.scheme = core::Scheme::kInterNode;

  const auto base_def = core::run_experiment(
      app.program, default_config(core::Scheme::kDefault));
  const auto base_opt = core::run_experiment(
      app.program, default_config(core::Scheme::kInterNode));
  const auto small_def = core::run_experiment(app.program, small);
  const auto small_o = core::run_experiment(app.program, small_opt);

  const double gain_default_caches =
      1.0 - base_opt.sim.exec_time / base_def.sim.exec_time;
  const double gain_small_caches =
      1.0 - small_o.sim.exec_time / small_def.sim.exec_time;
  EXPECT_GT(gain_small_caches, gain_default_caches - 0.02);
}

TEST(EndToEndTest, ExclusivePoliciesStillBenefit) {
  // Fig. 7(h): the optimization keeps working under KARMA and DEMOTE-LRU.
  const auto app = workloads::workload_by_name("swim");
  for (const auto policy :
       {storage::PolicyKind::kKarma, storage::PolicyKind::kDemoteLru}) {
    auto base = default_config(core::Scheme::kDefault);
    base.policy = policy;
    auto opt = default_config(core::Scheme::kInterNode);
    opt.policy = policy;
    const auto base_r = core::run_experiment(app.program, base);
    const auto opt_r = core::run_experiment(app.program, opt);
    EXPECT_LT(opt_r.sim.exec_time, base_r.sim.exec_time)
        << storage::policy_name(policy);
  }
}

TEST(EndToEndTest, SuiteRunsAreDeterministic) {
  const auto app = workloads::workload_by_name("bt");
  const auto a = core::run_experiment(app.program,
                                      default_config(core::Scheme::kInterNode));
  const auto b = core::run_experiment(app.program,
                                      default_config(core::Scheme::kInterNode));
  EXPECT_EQ(a.sim.exec_time, b.sim.exec_time);
  EXPECT_EQ(a.sim.disk_reads, b.sim.disk_reads);
}

}  // namespace
}  // namespace flo
