// Suite-wide property tests: for every application and every array the
// optimizer materializes, the inter-node layout must be injective over the
// touched elements, block-aligned at chunk starts, and consistent with the
// Step I ownership function. These invariants must hold regardless of how
// the workload models evolve.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/optimizer.hpp"
#include "linalg/unimodular.hpp"
#include "layout/internode.hpp"
#include "workloads/suite.hpp"

namespace flo {
namespace {

class LayoutPropertiesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LayoutPropertiesTest, MaterializedLayoutsAreInjectiveAndAligned) {
  const auto app = workloads::workload_by_name(GetParam());
  const storage::StorageTopology topology(
      storage::TopologyConfig::paper_default());
  const parallel::ParallelSchedule schedule(app.program, 64);
  const core::FileLayoutOptimizer optimizer(topology);
  const auto result = optimizer.optimize(app.program, schedule);

  for (std::size_t a = 0; a < result.layouts.size(); ++a) {
    const auto* layout =
        dynamic_cast<const layout::InterNodeLayout*>(result.layouts[a].get());
    if (!layout) continue;
    const auto& decl = app.program.array(static_cast<ir::ArrayId>(a));
    SCOPED_TRACE(app.name + "/" + decl.name());

    // Walk every reference image (the touched set) and check injectivity
    // plus slot-range sanity. Different references can hit the same
    // element, so uniqueness is judged per distinct element.
    std::unordered_set<std::int64_t> seen;
    std::unordered_set<std::int64_t> visited_elements;
    for (const auto& nest : app.program.nests()) {
      for (const auto& ref : nest.references()) {
        if (ref.array != a) continue;
        // Sample the iteration space on a coarse grid to keep runtime low;
        // corners and interior strides cover boundary arithmetic.
        const std::int64_t step = 7;
        std::vector<std::int64_t> cursor(nest.depth());
        for (std::size_t k = 0; k < nest.depth(); ++k) {
          cursor[k] = nest.iterations().bound(k).lower;
        }
        bool more = true;
        while (more) {
          const auto element = ref.map.evaluate(cursor);
          const std::int64_t idx =
              decl.space().linearize_row_major(element);
          if (visited_elements.insert(idx).second) {
            const std::int64_t slot = layout->slot(element);
            EXPECT_GE(slot, 0);
            EXPECT_LT(slot, layout->file_slots());
            const auto [it, fresh] = seen.insert(slot);
            EXPECT_TRUE(fresh) << "duplicate slot " << slot;
          }
          more = false;
          for (std::size_t k = nest.depth(); k-- > 0;) {
            cursor[k] += step;
            if (cursor[k] <= nest.iterations().bound(k).upper) {
              more = true;
              break;
            }
            cursor[k] = nest.iterations().bound(k).lower;
          }
        }
      }
    }
    EXPECT_FALSE(seen.empty());

    // Chunk starts are block-aligned (chunks are whole-block multiples).
    const std::uint64_t block_elems =
        topology.config().block_size /
        static_cast<std::uint64_t>(decl.element_size());
    EXPECT_EQ(layout->pattern().chunk_elements() % block_elems, 0u)
        << "chunk not block-aligned";
  }
}

TEST_P(LayoutPropertiesTest, PartitioningInvariants) {
  const auto app = workloads::workload_by_name(GetParam());
  const parallel::ParallelSchedule schedule(app.program, 64);
  for (ir::ArrayId a = 0; a < app.program.arrays().size(); ++a) {
    const auto part = layout::partition_array(app.program, a, schedule);
    SCOPED_TRACE(app.name + "/" + app.program.array(a).name());
    if (!part.partitioned) continue;
    // The transform is unimodular with the hyperplane as its v-th row.
    EXPECT_TRUE(linalg::is_unimodular(part.transform));
    EXPECT_EQ(part.transform.row(part.partition_dim), part.hyperplane);
    // alpha positive by construction; the satisfied weight is a subset.
    EXPECT_GT(part.alpha, 0);
    EXPECT_LE(part.satisfied_weight, part.total_weight);
    EXPECT_GE(part.satisfied_groups, 1u);
    EXPECT_LE(part.s_min, part.s_max);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, LayoutPropertiesTest,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace flo
