#include "ir/builder.hpp"

#include <gtest/gtest.h>

#include "ir/printer.hpp"
#include "ir/validate.hpp"

namespace flo::ir {
namespace {

TEST(BuilderTest, MatmulStyleProgram) {
  // The Fig. 3(b) example: W[i,j] += X[i,k] * Y[k,j].
  Program p = ProgramBuilder("matmul")
                  .array("W", {16, 16})
                  .array("X", {16, 16})
                  .array("Y", {16, 16})
                  .nest("mm", {{0, 15}, {0, 15}, {0, 15}}, 0)
                  .write("W", {{1, 0, 0}, {0, 1, 0}})
                  .read("X", {{1, 0, 0}, {0, 0, 1}})
                  .read("Y", {{0, 0, 1}, {0, 1, 0}})
                  .done()
                  .build();
  EXPECT_EQ(p.arrays().size(), 3u);
  ASSERT_EQ(p.nests().size(), 1u);
  EXPECT_EQ(p.nests()[0].references().size(), 3u);
  EXPECT_EQ(p.nests()[0].references()[0].kind, AccessKind::kWrite);
  EXPECT_EQ(p.nests()[0].references()[1].kind, AccessKind::kRead);
}

TEST(BuilderTest, UnknownArrayThrows) {
  ProgramBuilder pb("bad");
  pb.array("A", {4, 4});
  EXPECT_THROW(pb.nest("n", {{0, 3}, {0, 3}}, 0).read("B", {{1, 0}, {0, 1}}),
               std::invalid_argument);
}

TEST(BuilderTest, OffsetReferences) {
  Program p = ProgramBuilder("stencil")
                  .array("A", {18, 18})
                  .nest("sweep", {{0, 15}, {0, 15}}, 0)
                  .read_ofs("A", {{1, 0}, {0, 1}}, {1, 1})
                  .read_ofs("A", {{1, 0}, {0, 1}}, {2, 1})
                  .write_ofs("A", {{1, 0}, {0, 1}}, {0, 0})
                  .done()
                  .build();
  const auto& refs = p.nests()[0].references();
  EXPECT_EQ(refs[0].map.offset(), (linalg::IntVector{1, 1}));
  EXPECT_EQ(refs[1].map.offset(), (linalg::IntVector{2, 1}));
}

TEST(BuilderTest, BuildValidatesBounds) {
  ProgramBuilder pb("oob");
  pb.array("A", {4, 4});
  pb.nest("n", {{0, 7}, {0, 7}}, 0).read("A", {{1, 0}, {0, 1}}).done();
  EXPECT_THROW(pb.build(), std::invalid_argument);
}

TEST(BuilderTest, BuildRequiresNests) {
  ProgramBuilder pb("empty");
  pb.array("A", {4});
  EXPECT_THROW(pb.build(), std::invalid_argument);
}

TEST(ValidateTest, ReportsAllIssues) {
  Program p("multi");
  p.add_array(ArrayDecl("A", poly::DataSpace({2, 2})));
  LoopNest nest("n", poly::IterationSpace({{0, 7}, {0, 7}}), 0);
  nest.add_reference(
      {0, poly::AffineReference::identity(2, 2), AccessKind::kRead});
  p.add_nest(std::move(nest));
  const auto issues = validate(p);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("outside array A"), std::string::npos);
}

TEST(PrinterTest, PseudocodeShape) {
  Program p = ProgramBuilder("demo")
                  .array("A", {8, 8})
                  .nest("sweep", {{0, 7}, {0, 7}}, 1, 3)
                  .read("A", {{0, 1}, {1, 0}})
                  .done()
                  .build();
  const std::string code = to_pseudocode(p);
  EXPECT_NE(code.find("program demo"), std::string::npos);
  EXPECT_NE(code.find("array A[8 x 8]"), std::string::npos);
  EXPECT_NE(code.find("parallel on i2"), std::string::npos);
  EXPECT_NE(code.find("repeat 3"), std::string::npos);
  EXPECT_NE(code.find("read  A[i2, i1]"), std::string::npos);
}

}  // namespace
}  // namespace flo::ir
