#include "ir/parser.hpp"

#include <gtest/gtest.h>

namespace flo::ir {
namespace {

constexpr const char* kTranspose = R"(
# out-of-core transpose
program transpose
array A 16 16
array B 16 16
nest tr parallel=1 repeat=2 {
  for i1 = 0..15
  for i2 = 0..15
  read  A[i1, i2]
  write B[i2, i1]
}
)";

TEST(ParserTest, ParsesTranspose) {
  const Program p = parse_program(kTranspose);
  EXPECT_EQ(p.name(), "transpose");
  ASSERT_EQ(p.arrays().size(), 2u);
  ASSERT_EQ(p.nests().size(), 1u);
  const auto& nest = p.nests()[0];
  EXPECT_EQ(nest.name(), "tr");
  EXPECT_EQ(nest.parallel_dim(), 0u);
  EXPECT_EQ(nest.repeat(), 2);
  ASSERT_EQ(nest.references().size(), 2u);
  EXPECT_EQ(nest.references()[0].kind, AccessKind::kRead);
  EXPECT_EQ(nest.references()[1].kind, AccessKind::kWrite);
  EXPECT_EQ(nest.references()[1].map.access_matrix(),
            (linalg::IntMatrix{{0, 1}, {1, 0}}));
}

TEST(ParserTest, AffineExpressions) {
  const Program p = parse_program(R"(
program affine
array A 80 40
nest n parallel=2 {
  for i1 = 0..15
  for i2 = 0..15
  read A[2*i1 + i2 + 3, i2 - 0]
}
)");
  const auto& ref = p.nests()[0].references()[0];
  EXPECT_EQ(ref.map.access_matrix(), (linalg::IntMatrix{{2, 1}, {0, 1}}));
  EXPECT_EQ(ref.map.offset(), (linalg::IntVector{3, 0}));
  EXPECT_EQ(p.nests()[0].parallel_dim(), 1u);
}

TEST(ParserTest, NegativeCoefficients) {
  const Program p = parse_program(R"(
program neg
array A 40 40
nest n parallel=1 {
  for i1 = 0..15
  for i2 = 0..15
  read A[-i1 + 20, 2*i2]
}
)");
  const auto& ref = p.nests()[0].references()[0];
  EXPECT_EQ(ref.map.access_matrix(), (linalg::IntMatrix{{-1, 0}, {0, 2}}));
  EXPECT_EQ(ref.map.offset(), (linalg::IntVector{20, 0}));
}

TEST(ParserTest, MultipleNests) {
  const Program p = parse_program(R"(
program multi
array A 16 16
nest a parallel=1 {
  for i1 = 0..15
  for i2 = 0..15
  read A[i1, i2]
}
nest b parallel=1 repeat=3 {
  for i1 = 0..15
  for i2 = 0..15
  read A[i2, i1]
}
)");
  ASSERT_EQ(p.nests().size(), 2u);
  EXPECT_EQ(p.nests()[1].repeat(), 3);
}

TEST(ParserTest, ReportsLineNumbers) {
  try {
    parse_program("program x\narray A 4\nnest n parallel=1 {\n  for i1 = 0..3\n  read B[i1]\n}\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 5u);
    EXPECT_NE(std::string(err.what()).find("unknown array"),
              std::string::npos);
  }
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_THROW(parse_program("array A 4\n"), ParseError);  // no program
  EXPECT_THROW(parse_program("program p\nnest n parallel=1 {\n"),
               ParseError);  // unterminated nest
  EXPECT_THROW(parse_program("program p\narray A 4\nbogus\n"), ParseError);
  EXPECT_THROW(parse_program(R"(
program p
array A 4 4
nest n parallel=3 {
  for i1 = 0..3
  for i2 = 0..3
  read A[i1, i2]
}
)"),
               ParseError);  // parallel dim out of range
  EXPECT_THROW(parse_program(R"(
program p
array A 4 4
nest n parallel=1 {
  for i1 = 0..3
  read A[i1, i9]
}
)"),
               ParseError);  // iterator out of range
}

TEST(ParserTest, SemanticValidationRuns) {
  // Indexes out of the declared extents: assembled, then rejected with a
  // ParseError so drivers print one uniform file:line diagnostic.
  try {
    parse_program(R"(
program p
array A 4 4
nest n parallel=1 {
  for i1 = 0..7
  for i2 = 0..3
  read A[i1, i2]
}
)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& err) {
    EXPECT_GT(err.line(), 0u);
    EXPECT_NE(err.message().find("failed validation"), std::string::npos);
  }
}

TEST(ParserTest, ParseErrorCarriesLineAndMessage) {
  try {
    parse_program("program p\nbogus directive\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2u);
    EXPECT_EQ(err.message(), "unknown directive 'bogus'");
    EXPECT_EQ(std::string(err.what()), "line 2: unknown directive 'bogus'");
  }
}

TEST(ParserTest, CommentsAndBlankLines) {
  const Program p = parse_program(R"(
# leading comment
program c   # trailing comment

array A 8 8   # array comment
nest n parallel=1 {
  for i1 = 0..7
  for i2 = 0..7
  read A[i1, i2]  # ref comment
}
)");
  EXPECT_EQ(p.arrays().size(), 1u);
}

}  // namespace
}  // namespace flo::ir
