#include "ir/program.hpp"

#include <gtest/gtest.h>

namespace flo::ir {
namespace {

ArrayDecl make_array(const std::string& name) {
  return ArrayDecl(name, poly::DataSpace({8, 8}));
}

LoopNest make_nest(const std::string& name, ArrayId array) {
  LoopNest nest(name, poly::IterationSpace({{0, 7}, {0, 7}}), 0, 2);
  nest.add_reference(
      {array, poly::AffineReference::identity(2, 2), AccessKind::kRead});
  return nest;
}

TEST(ArrayDeclTest, ValidationAndByteSize) {
  const ArrayDecl decl("A", poly::DataSpace({4, 4}), 8);
  EXPECT_EQ(decl.byte_size(), 128);
  EXPECT_EQ(decl.dims(), 2u);
  EXPECT_THROW(ArrayDecl("", poly::DataSpace({4})), std::invalid_argument);
  EXPECT_THROW(ArrayDecl("A", poly::DataSpace({4}), 0), std::invalid_argument);
}

TEST(LoopNestTest, Validation) {
  EXPECT_THROW(LoopNest("", poly::IterationSpace({{0, 1}}), 0),
               std::invalid_argument);
  EXPECT_THROW(LoopNest("n", poly::IterationSpace({{0, 1}}), 1),
               std::invalid_argument);
  EXPECT_THROW(LoopNest("n", poly::IterationSpace({{0, 1}}), 0, 0),
               std::invalid_argument);
}

TEST(LoopNestTest, ReferenceDepthChecked) {
  LoopNest nest("n", poly::IterationSpace({{0, 3}, {0, 3}}), 0);
  Reference bad{0, poly::AffineReference::identity(2, 3), AccessKind::kRead};
  EXPECT_THROW(nest.add_reference(bad), std::invalid_argument);
}

TEST(LoopNestTest, TripCountIncludesRepeat) {
  LoopNest nest("n", poly::IterationSpace({{0, 3}, {0, 4}}), 0, 5);
  EXPECT_EQ(nest.reference_trip_count(), 4 * 5 * 5);
}

TEST(ProgramTest, AddAndLookup) {
  Program p("test");
  const ArrayId a = p.add_array(make_array("A"));
  const ArrayId b = p.add_array(make_array("B"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(p.array(b).name(), "B");
  EXPECT_EQ(p.find_array("A"), std::optional<ArrayId>(0));
  EXPECT_EQ(p.find_array("missing"), std::nullopt);
  EXPECT_THROW(p.array(2), std::out_of_range);
}

TEST(ProgramTest, DuplicateArrayNameRejected) {
  Program p("test");
  p.add_array(make_array("A"));
  EXPECT_THROW(p.add_array(make_array("A")), std::invalid_argument);
}

TEST(ProgramTest, NestValidatesArrayIds) {
  Program p("test");
  p.add_array(make_array("A"));
  EXPECT_NO_THROW(p.add_nest(make_nest("good", 0)));
  EXPECT_THROW(p.add_nest(make_nest("bad", 7)), std::invalid_argument);
}

TEST(ProgramTest, NestValidatesDimensionality) {
  Program p("test");
  p.add_array(ArrayDecl("A", poly::DataSpace({8})));  // 1-D
  LoopNest nest("n", poly::IterationSpace({{0, 7}, {0, 7}}), 0);
  nest.add_reference(
      {0, poly::AffineReference::identity(2, 2), AccessKind::kRead});
  EXPECT_THROW(p.add_nest(std::move(nest)), std::invalid_argument);
}

TEST(ProgramTest, UsesOfCollectsTripCounts) {
  Program p("test");
  const ArrayId a = p.add_array(make_array("A"));
  const ArrayId b = p.add_array(make_array("B"));
  p.add_nest(make_nest("n1", a));
  p.add_nest(make_nest("n2", a));
  p.add_nest(make_nest("n3", b));
  const auto uses = p.uses_of(a);
  ASSERT_EQ(uses.size(), 2u);
  EXPECT_EQ(uses[0].nest_index, 0u);
  EXPECT_EQ(uses[1].nest_index, 1u);
  EXPECT_EQ(uses[0].trip_count, 8 * 8 * 2);
  EXPECT_EQ(p.uses_of(b).size(), 1u);
}

}  // namespace
}  // namespace flo::ir
