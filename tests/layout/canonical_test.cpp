#include "layout/canonical.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ir/builder.hpp"

namespace flo::layout {
namespace {

TEST(RowMajorLayoutTest, MatchesDataSpaceLinearization) {
  const poly::DataSpace space({3, 5});
  const RowMajorLayout layout(space);
  EXPECT_EQ(layout.file_slots(), 15);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{0, 0}), 0);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{0, 4}), 4);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{1, 0}), 5);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{2, 4}), 14);
}

TEST(ColumnMajorLayoutTest, FirstDimensionFastest) {
  const poly::DataSpace space({3, 5});
  const ColumnMajorLayout layout(space);
  EXPECT_EQ(layout.file_slots(), 15);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{0, 0}), 0);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{1, 0}), 1);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{0, 1}), 3);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{2, 4}), 14);
}

TEST(CanonicalLayoutTest, BothAreBijections) {
  const poly::DataSpace space({4, 3, 2});
  const RowMajorLayout rm(space);
  const ColumnMajorLayout cm(space);
  std::set<std::int64_t> rm_slots, cm_slots;
  for (std::int64_t i = 0; i < space.element_count(); ++i) {
    const auto point = space.delinearize_row_major(i);
    rm_slots.insert(rm.slot(point));
    cm_slots.insert(cm.slot(point));
  }
  EXPECT_EQ(rm_slots.size(), 24u);
  EXPECT_EQ(cm_slots.size(), 24u);
  EXPECT_EQ(*rm_slots.rbegin(), 23);
  EXPECT_EQ(*cm_slots.rbegin(), 23);
}

TEST(CanonicalLayoutTest, DimensionMismatchThrows) {
  const ColumnMajorLayout layout(poly::DataSpace({3, 5}));
  EXPECT_THROW(layout.slot(std::vector<std::int64_t>{1}),
               std::invalid_argument);
}

TEST(CanonicalLayoutTest, Describe) {
  EXPECT_NE(RowMajorLayout(poly::DataSpace({2, 2})).describe().find(
                "row-major"),
            std::string::npos);
  EXPECT_NE(ColumnMajorLayout(poly::DataSpace({2, 2})).describe().find(
                "column-major"),
            std::string::npos);
}

TEST(DefaultLayoutsTest, OnePerArray) {
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {4, 4})
                            .array("B", {8})
                            .nest("n", {{0, 3}, {0, 3}}, 0)
                            .read("A", {{1, 0}, {0, 1}})
                            .done()
                            .build();
  const LayoutMap layouts = default_layouts(p);
  ASSERT_EQ(layouts.size(), 2u);
  EXPECT_EQ(layouts[0]->file_slots(), 16);
  EXPECT_EQ(layouts[1]->file_slots(), 8);
}

}  // namespace
}  // namespace flo::layout
