#include "layout/chunk_pattern.hpp"

#include <gtest/gtest.h>

#include <set>

namespace flo::layout {
namespace {

TEST(ChunkPatternTest, PaperFig6Example) {
  // The Section 4.2 walkthrough: 4 threads, two SC1 caches (size S1) under
  // one SC2 cache (size S2 = 4*S1), l = 2 threads per SC1 cache.
  const std::uint64_t s1 = 1024;  // bytes
  const std::uint64_t s2 = 4096;
  ChunkPattern pattern({{s1, 2}, {s2, 1}}, /*threads=*/4,
                       /*element_size=*/1);
  // c = S1 / l.
  EXPECT_EQ(pattern.chunk_elements(), s1 / 2);
  // P1 = S1; t1 = S2 / (2 * S1) = 2; P2 = S2.
  ASSERT_EQ(pattern.pattern_elements().size(), 3u);
  EXPECT_EQ(pattern.pattern_elements()[0], s1);
  EXPECT_EQ(pattern.repetitions()[0], 2u);
  EXPECT_EQ(pattern.pattern_elements()[1], s2);

  // base addresses: P1 -> 0, P2 -> c, P3 -> S2/2, P4 -> S2/2 + c.
  EXPECT_EQ(pattern.chunk_start(0, 0), 0u);
  EXPECT_EQ(pattern.chunk_start(1, 0), s1 / 2);
  EXPECT_EQ(pattern.chunk_start(2, 0), s2 / 2);
  EXPECT_EQ(pattern.chunk_start(3, 0), s2 / 2 + s1 / 2);

  // b1 = (x % t1) * S1 ; b2/b_root = (x / t1) * S2 (paper's formulas).
  EXPECT_EQ(pattern.chunk_start(0, 1), s1);            // second rep of <P1,P2>
  EXPECT_EQ(pattern.chunk_start(0, 2), s2);            // next SC2 pattern
  EXPECT_EQ(pattern.chunk_start(0, 3), s2 + s1);
  EXPECT_EQ(pattern.chunk_start(2, 1), s2 / 2 + s1);   // <P3,P4> repeats
  EXPECT_EQ(pattern.chunk_start(2, 2), s2 + s2 / 2);
}

TEST(ChunkPatternTest, ChunksNeverOverlap) {
  ChunkPattern pattern({{1024, 2}, {4096, 1}}, 4, 1);
  const std::uint64_t c = pattern.chunk_elements();
  std::set<std::uint64_t> used;
  for (parallel::ThreadId t = 0; t < 4; ++t) {
    for (std::uint64_t x = 0; x < 8; ++x) {
      const std::uint64_t start = pattern.chunk_start(t, x);
      for (std::uint64_t e = start; e < start + c; ++e) {
        EXPECT_TRUE(used.insert(e).second)
            << "overlap at element " << e << " (thread " << t << ", chunk "
            << x << ")";
      }
    }
  }
  // And they tile the file densely in this exact-fit configuration.
  EXPECT_EQ(used.size(), 4u * 8u * c);
  EXPECT_EQ(*used.begin(), 0u);
  EXPECT_EQ(*used.rbegin(), 4u * 8u * c - 1);
}

TEST(ChunkPatternTest, SingleLayerSeparatesCaches) {
  // One layer with 2 caches: threads of different caches must not collide
  // (the virtual root concatenates per-cache patterns).
  ChunkPattern pattern({{1024, 2}}, 4, 1);
  std::set<std::uint64_t> starts;
  for (parallel::ThreadId t = 0; t < 4; ++t) {
    for (std::uint64_t x = 0; x < 4; ++x) {
      EXPECT_TRUE(starts.insert(pattern.chunk_start(t, x)).second);
    }
  }
}

TEST(ChunkPatternTest, DegenerateRepetitionClampedToOne) {
  // S2 smaller than N2 * S1 would give t1 < 1; it is clamped to 1.
  ChunkPattern pattern({{4096, 4}, {1024, 1}}, 8, 1);
  EXPECT_EQ(pattern.repetitions()[0], 1u);
  // Still non-overlapping.
  std::set<std::uint64_t> starts;
  for (parallel::ThreadId t = 0; t < 8; ++t) {
    for (std::uint64_t x = 0; x < 3; ++x) {
      EXPECT_TRUE(starts.insert(pattern.chunk_start(t, x)).second);
    }
  }
}

TEST(ChunkPatternTest, ElementSizeScalesChunk) {
  ChunkPattern bytes1({{1024, 2}, {4096, 1}}, 4, 1);
  ChunkPattern bytes8({{1024, 2}, {4096, 1}}, 4, 8);
  EXPECT_EQ(bytes1.chunk_elements(), 8 * bytes8.chunk_elements());
}

TEST(ChunkPatternTest, ChunkCapApplies) {
  ChunkPattern capped({{1024, 2}, {4096, 1}}, 4, 1, {}, /*cap=*/64);
  EXPECT_EQ(capped.chunk_elements(), 64u);
  ChunkPattern uncapped({{1024, 2}, {4096, 1}}, 4, 1, {}, 0);
  EXPECT_EQ(uncapped.chunk_elements(), 512u);
}

TEST(ChunkPatternTest, CustomLeafMappingReordersBases) {
  // Swap the cache assignment of threads 1 and 2.
  ChunkPattern identity({{1024, 2}, {4096, 1}}, 4, 1);
  ChunkPattern swapped({{1024, 2}, {4096, 1}}, 4, 1,
                       std::vector<std::size_t>{0, 1, 0, 1});
  // Under the swap, thread 1 is alone on cache 1's first slot.
  EXPECT_EQ(swapped.chunk_start(1, 0), identity.chunk_start(2, 0));
  EXPECT_EQ(swapped.chunk_start(2, 0), identity.chunk_start(1, 0));
}

TEST(ChunkPatternTest, UnbalancedLeafMappingRejected) {
  EXPECT_THROW(ChunkPattern({{1024, 2}}, 4, 1,
                            std::vector<std::size_t>{0, 0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(ChunkPattern({{1024, 2}}, 4, 1,
                            std::vector<std::size_t>{0, 0, 2, 2}),
               std::invalid_argument);
}

TEST(ChunkPatternTest, InvalidConfigurationsRejected) {
  EXPECT_THROW(ChunkPattern({}, 4, 1), std::invalid_argument);
  EXPECT_THROW(ChunkPattern({{1024, 2}}, 0, 1), std::invalid_argument);
  EXPECT_THROW(ChunkPattern({{1024, 2}}, 4, 0), std::invalid_argument);
  EXPECT_THROW(ChunkPattern({{1024, 3}}, 4, 1), std::invalid_argument);
  // Upper layer counts must nest within lower ones.
  EXPECT_THROW(ChunkPattern({{1024, 4}, {4096, 3}}, 12, 1),
               std::invalid_argument);
}

TEST(PatternLayersTest, MasksSelectLayers) {
  storage::TopologyConfig c = storage::TopologyConfig::paper_default();
  const storage::StorageTopology topo(c);
  const auto both = pattern_layers(topo, LayerMask::kBoth);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].cache_count, 16u);
  EXPECT_EQ(both[1].cache_count, 4u);
  EXPECT_EQ(pattern_layers(topo, LayerMask::kIoOnly).size(), 1u);
  EXPECT_EQ(pattern_layers(topo, LayerMask::kStorageOnly)[0].cache_count, 4u);
}

TEST(PatternLayersTest, MaskNames) {
  EXPECT_STREQ(layer_mask_name(LayerMask::kBoth), "both layers");
  EXPECT_STREQ(layer_mask_name(LayerMask::kIoOnly), "I/O layer only");
  EXPECT_STREQ(layer_mask_name(LayerMask::kStorageOnly),
               "storage layer only");
}

}  // namespace
}  // namespace flo::layout
