// Property-based round trips for layout/conversion: for randomly sampled
// programs, topologies and layout transforms, converting a file from its
// canonical (row-major) layout to an optimized layout and back must
// restore every element — and the conversion plans themselves must be
// consistent (full coverage, symmetric move counts, identity on equal
// layouts). Complements the example-based tests in conversion_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "core/optimizer.hpp"
#include "ir/parser.hpp"
#include "layout/canonical.hpp"
#include "layout/conversion.hpp"
#include "layout/internode.hpp"
#include "layout/permutation.hpp"
#include "parallel/schedule.hpp"
#include "testing/generator.hpp"

namespace flo::layout {
namespace {

/// Simulates the element-wise file conversion canonical -> to -> canonical
/// and checks that the original contents come back.
void expect_round_trip(const ir::ArrayDecl& array, const FileLayout& to) {
  const RowMajorLayout canonical(array.space());
  std::vector<std::int64_t> file_mid(
      static_cast<std::size_t>(to.file_slots()), -1);
  std::vector<std::int64_t> file_back(
      static_cast<std::size_t>(canonical.file_slots()), -1);

  std::vector<std::int64_t> e(array.dims(), 0);
  bool more = true;
  while (more) {
    const std::int64_t idx = array.space().linearize_row_major(e);
    file_mid[static_cast<std::size_t>(to.slot(e))] = idx;
    more = false;
    for (std::size_t k = array.dims(); k-- > 0;) {
      if (++e[k] < array.space().extent(k)) {
        more = true;
        break;
      }
      e[k] = 0;
    }
  }
  std::fill(e.begin(), e.end(), 0);
  more = true;
  while (more) {
    file_back[static_cast<std::size_t>(canonical.slot(e))] =
        file_mid[static_cast<std::size_t>(to.slot(e))];
    more = false;
    for (std::size_t k = array.dims(); k-- > 0;) {
      if (++e[k] < array.space().extent(k)) {
        more = true;
        break;
      }
      e[k] = 0;
    }
  }

  std::fill(e.begin(), e.end(), 0);
  more = true;
  while (more) {
    const std::int64_t idx = array.space().linearize_row_major(e);
    ASSERT_EQ(file_back[static_cast<std::size_t>(canonical.slot(e))], idx)
        << "element lost through " << to.describe();
    more = false;
    for (std::size_t k = array.dims(); k-- > 0;) {
      if (++e[k] < array.space().extent(k)) {
        more = true;
        break;
      }
      e[k] = 0;
    }
  }
}

void expect_plan_consistency(const ir::ArrayDecl& array, const FileLayout& to,
                             const storage::TopologyConfig& config) {
  const RowMajorLayout canonical(array.space());
  const ConversionPlan there = plan_conversion(array, canonical, to, config);
  const ConversionPlan back = plan_conversion(array, to, canonical, config);
  EXPECT_EQ(there.total_elements, array.space().element_count());
  EXPECT_EQ(back.total_elements, array.space().element_count());
  // An element is displaced in one direction iff it is displaced in the
  // other, so moved counts are symmetric.
  EXPECT_EQ(there.moved_elements, back.moved_elements);
  EXPECT_TRUE(plan_conversion(array, to, to, config).is_identity());
  EXPECT_TRUE(
      plan_conversion(array, canonical, canonical, config).is_identity());
}

TEST(ConversionProperty, OptimizedLayoutsRoundTripAcrossSampledCases) {
  std::size_t internode_layouts = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    util::Rng rng(seed);
    const testing::FuzzCase fc = testing::random_case(rng);
    const storage::StorageTopology topology(fc.system.config);
    const parallel::ParallelSchedule schedule(fc.program, fc.system.threads,
                                              fc.system.mapping);
    const core::FileLayoutOptimizer optimizer(topology);
    const core::OptimizationResult result =
        optimizer.optimize(fc.program, schedule);
    for (std::size_t a = 0; a < fc.program.arrays().size(); ++a) {
      const ir::ArrayDecl& array = fc.program.arrays()[a];
      expect_round_trip(array, *result.layouts[a]);
      expect_plan_consistency(array, *result.layouts[a], fc.system.config);
      if (dynamic_cast<const InterNodeLayout*>(result.layouts[a].get())) {
        ++internode_layouts;
      }
    }
  }
  // The sweep must actually exercise optimized (non-canonical) layouts,
  // not just fall back to row-major everywhere.
  EXPECT_GT(internode_layouts, 0u);
}

TEST(ConversionProperty, NonSquareChunkPatternsRoundTrip) {
  // Asymmetric extents and a layered 6/3/1 topology produce a chunk
  // pattern that is not a square tile of the array (the Step II patterns
  // for multi-layer cache hierarchies); the conversion must still be a
  // perfect bijection.
  const ir::Program program = ir::parse_program(
      "program nonsquare\n"
      "array A 60 36\n"
      "nest n parallel=1 {\n"
      "  for i1 = 0..35\n"
      "  for i2 = 0..59\n"
      "  read A[i2, i1]\n"
      "}\n");
  storage::TopologyConfig config;
  config.compute_nodes = 6;
  config.io_nodes = 3;
  config.storage_nodes = 1;
  // Small caches so the 60x36 array clears the optimizer's profitability
  // bound (byte_size > 2 * io_cache_bytes) and actually gets relaid.
  config.block_size = 512;
  config.io_cache_bytes = 2048;
  config.storage_cache_bytes = 4096;
  const storage::StorageTopology topology(config);
  const parallel::ParallelSchedule schedule(program, 6);
  const core::FileLayoutOptimizer optimizer(topology);
  const core::OptimizationResult result = optimizer.optimize(program, schedule);
  ASSERT_EQ(result.layouts.size(), 1u);
  const auto* internode =
      dynamic_cast<const InterNodeLayout*>(result.layouts[0].get());
  ASSERT_NE(internode, nullptr)
      << "expected an inter-node layout, got "
      << result.layouts[0]->describe();
  const ir::ArrayDecl& array = program.arrays()[0];
  // 360 touched elements over 6 threads through a 2-layer pattern: the
  // chunk is a 1-D run of the slab, not a square tile.
  EXPECT_NE(internode->pattern().chunk_elements() *
                internode->pattern().chunk_elements(),
            static_cast<std::uint64_t>(array.space().element_count()));
  expect_round_trip(array, *internode);
  expect_plan_consistency(array, *internode, config);
}

TEST(ConversionProperty, PermutationLayoutsRoundTripForAllOrders) {
  util::Rng rng(11);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng sample(seed);
    testing::GeneratorOptions options;
    options.max_arrays = 1;
    options.max_nests = 1;
    const ir::Program program = testing::random_program(sample, options);
    const ir::ArrayDecl& array = program.arrays()[0];
    storage::TopologyConfig config;
    for (const auto& order : all_dimension_orders(array.dims())) {
      const DimensionPermutationLayout layout(array.space(), order);
      expect_round_trip(array, layout);
      expect_plan_consistency(array, layout, config);
    }
  }
}

}  // namespace
}  // namespace flo::layout
