#include "layout/conversion.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "layout/canonical.hpp"
#include "layout/internode.hpp"
#include "layout/permutation.hpp"

namespace flo::layout {
namespace {

ir::ArrayDecl square(std::int64_t n) {
  return ir::ArrayDecl("A", poly::DataSpace({n, n}));
}

TEST(ConversionTest, IdentityConversionMovesNothing) {
  const auto decl = square(32);
  const RowMajorLayout a(decl.space());
  const RowMajorLayout b(decl.space());
  const auto plan =
      plan_conversion(decl, a, b, storage::TopologyConfig::paper_default());
  EXPECT_TRUE(plan.is_identity());
  EXPECT_EQ(plan.moved_elements, 0);
  EXPECT_EQ(plan.estimated_seconds, 0.0);
  EXPECT_EQ(plan.total_elements, 32 * 32);
}

TEST(ConversionTest, TransposeMovesAllButTheDiagonalRun) {
  const auto decl = square(64);
  const RowMajorLayout rm(decl.space());
  const ColumnMajorLayout cm(decl.space());
  const auto plan =
      plan_conversion(decl, rm, cm, storage::TopologyConfig::paper_default());
  // Diagonal elements keep their slot under a square transpose.
  EXPECT_EQ(plan.moved_elements, 64 * 64 - 64);
  EXPECT_GT(plan.estimated_seconds, 0.0);
  EXPECT_GT(plan.source_blocks, 0u);
  EXPECT_GT(plan.target_blocks, 0u);
}

TEST(ConversionTest, CostScalesWithBlocksTouched) {
  const auto cfg = storage::TopologyConfig::paper_default();
  const auto small = square(64);
  const auto large = square(256);
  const RowMajorLayout small_rm(small.space());
  const ColumnMajorLayout small_cm(small.space());
  const RowMajorLayout large_rm(large.space());
  const ColumnMajorLayout large_cm(large.space());
  const auto small_plan = plan_conversion(small, small_rm, small_cm, cfg);
  const auto large_plan = plan_conversion(large, large_rm, large_cm, cfg);
  EXPECT_GT(large_plan.estimated_seconds, small_plan.estimated_seconds);
  EXPECT_GT(large_plan.source_blocks, small_plan.source_blocks);
}

TEST(ConversionTest, PermutationRoundTripSymmetric) {
  const auto decl = square(48);
  const DimensionPermutationLayout fwd(decl.space(), {1, 0});
  const RowMajorLayout rm(decl.space());
  const auto cfg = storage::TopologyConfig::paper_default();
  const auto there = plan_conversion(decl, rm, fwd, cfg);
  const auto back = plan_conversion(decl, fwd, rm, cfg);
  EXPECT_EQ(there.moved_elements, back.moved_elements);
}

TEST(ConversionTest, CanonicalToInterNode) {
  // The Section 4.3 scenario: convert a row-major input file into the
  // optimized inter-node layout at program start.
  const auto p = ir::ProgramBuilder("p")
                     .array("A", {64, 64})
                     .nest("n", {{0, 63}, {0, 63}}, 0)
                     .read("A", {{0, 1}, {1, 0}})
                     .done()
                     .build();
  storage::TopologyConfig cfg;
  cfg.compute_nodes = 8;
  cfg.io_nodes = 4;
  cfg.storage_nodes = 2;
  cfg.block_size = 64;
  cfg.io_cache_bytes = 1024;
  cfg.storage_cache_bytes = 2048;
  const storage::StorageTopology topo(cfg);
  const parallel::ParallelSchedule schedule(p, 8);
  const auto optimized = build_internode_layout(p, 0, schedule, topo);
  ASSERT_NE(optimized, nullptr);
  const RowMajorLayout canonical(p.array(0).space());
  const auto plan = plan_conversion(p.array(0), canonical, *optimized, cfg);
  // A column partition moves nearly everything.
  EXPECT_GT(plan.moved_elements, plan.total_elements / 2);
  EXPECT_GT(plan.estimated_seconds, 0.0);
}

TEST(ConversionTest, ToStringMentionsCounts) {
  const auto decl = square(32);
  const RowMajorLayout rm(decl.space());
  const ColumnMajorLayout cm(decl.space());
  const auto plan =
      plan_conversion(decl, rm, cm, storage::TopologyConfig::paper_default());
  EXPECT_NE(plan.to_string().find("elements move"), std::string::npos);
}

}  // namespace
}  // namespace flo::layout
