#include "layout/internode.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/builder.hpp"
#include "storage/topology.hpp"

namespace flo::layout {
namespace {

storage::StorageTopology small_topology() {
  storage::TopologyConfig c;
  c.compute_nodes = 8;
  c.io_nodes = 4;
  c.storage_nodes = 2;
  c.block_size = 64;           // 8 elements of 8 bytes
  c.io_cache_bytes = 1024;     // 16 blocks
  c.storage_cache_bytes = 2048;
  return storage::StorageTopology(c);
}

ir::Program transposed_program(std::int64_t n = 32) {
  return ir::ProgramBuilder("p")
      .array("A", {n, n})
      .nest("sweep", {{0, n - 1}, {0, n - 1}}, 0)
      .read("A", {{0, 1}, {1, 0}})
      .done()
      .build();
}

TEST(InterNodeLayoutTest, SlotsAreInjective) {
  const auto p = transposed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto layout =
      build_internode_layout(p, 0, schedule, small_topology());
  ASSERT_NE(layout, nullptr);
  const auto& space = p.array(0).space();
  std::set<std::int64_t> slots;
  for (std::int64_t i = 0; i < space.element_count(); ++i) {
    const std::int64_t slot = layout->slot(space.delinearize_row_major(i));
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, layout->file_slots());
    EXPECT_TRUE(slots.insert(slot).second) << "duplicate slot " << slot;
  }
}

TEST(InterNodeLayoutTest, OwnershipFollowsColumnSlabs) {
  // Transposed access parallel on i1: thread t owns column slab t.
  const auto p = transposed_program(32);
  const parallel::ParallelSchedule schedule(p, 8);
  const auto generic =
      build_internode_layout(p, 0, schedule, small_topology());
  ASSERT_NE(generic, nullptr);
  const auto* layout =
      dynamic_cast<const InterNodeLayout*>(generic.get());
  ASSERT_NE(layout, nullptr);
  // Column c belongs to thread c / 4 (32 columns over 8 threads).
  for (std::int64_t r = 0; r < 32; ++r) {
    for (std::int64_t c = 0; c < 32; ++c) {
      EXPECT_EQ(layout->owner(std::vector<std::int64_t>{r, c}),
                static_cast<parallel::ThreadId>(c / 4))
          << "element (" << r << ", " << c << ")";
    }
  }
}

TEST(InterNodeLayoutTest, ThreadDataIsChunkContiguous) {
  const auto p = transposed_program(32);
  const parallel::ParallelSchedule schedule(p, 8);
  const auto generic =
      build_internode_layout(p, 0, schedule, small_topology());
  const auto* layout = dynamic_cast<const InterNodeLayout*>(generic.get());
  ASSERT_NE(layout, nullptr);
  const std::uint64_t c = layout->pattern().chunk_elements();

  // Collect each thread's slots; they must exactly fill chunks whose
  // starts match Algorithm 1's closed form.
  std::map<parallel::ThreadId, std::set<std::int64_t>> slots_of;
  const auto& space = p.array(0).space();
  for (std::int64_t i = 0; i < space.element_count(); ++i) {
    const auto point = space.delinearize_row_major(i);
    slots_of[layout->owner(point)].insert(layout->slot(point));
  }
  for (const auto& [thread, slots] : slots_of) {
    std::uint64_t x = 0;
    auto it = slots.begin();
    while (it != slots.end()) {
      const std::uint64_t start = layout->pattern().chunk_start(thread, x);
      for (std::uint64_t e = 0; e < c && it != slots.end(); ++e, ++it) {
        EXPECT_EQ(static_cast<std::uint64_t>(*it), start + e)
            << "thread " << thread << " chunk " << x;
      }
      ++x;
    }
  }
}

TEST(InterNodeLayoutTest, UnpartitionableArrayReturnsNull) {
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("X", {32, 32})
                            .nest("n", {{0, 31}, {0, 31}, {0, 31}}, 0)
                            .read("X", {{0, 0, 1}, {0, 1, 0}})
                            .done()
                            .build();
  const parallel::ParallelSchedule schedule(p, 8);
  EXPECT_EQ(build_internode_layout(p, 0, schedule, small_topology()),
            nullptr);
}

TEST(InterNodeLayoutTest, RequiresPartitionedInput) {
  const auto p = transposed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  ArrayPartitioning not_partitioned;
  not_partitioned.transform = linalg::IntMatrix::identity(2);
  EXPECT_THROW(InterNodeLayout(p, 0, not_partitioned, schedule,
                               {{1024, 4}}, {}, 8),
               std::invalid_argument);
}

TEST(InterNodeLayoutTest, TouchedCountMatchesAccessImage) {
  const auto p = transposed_program(32);
  const parallel::ParallelSchedule schedule(p, 8);
  const auto generic =
      build_internode_layout(p, 0, schedule, small_topology());
  const auto* layout = dynamic_cast<const InterNodeLayout*>(generic.get());
  ASSERT_NE(layout, nullptr);
  // The transposed sweep touches every element exactly once.
  EXPECT_EQ(layout->touched_count(), 32u * 32u);
}

TEST(InterNodeLayoutTest, SparseImagePacksOnlyTouchedElements) {
  // A strided reference touches one element in four: the layout packs the
  // touched quarter contiguously and parks the rest past the pattern.
  const auto p = ir::ProgramBuilder("sparse")
                     .array("A", {128, 32})
                     .nest("n", {{0, 31}, {0, 31}}, 0)
                     .read("A", {{4, 0}, {0, 1}})
                     .done()
                     .build();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto generic =
      build_internode_layout(p, 0, schedule, small_topology());
  const auto* layout = dynamic_cast<const InterNodeLayout*>(generic.get());
  ASSERT_NE(layout, nullptr);
  EXPECT_EQ(layout->touched_count(), 32u * 32u);
  // Touched elements land inside the patterned region...
  const std::int64_t touched_slot =
      layout->slot(std::vector<std::int64_t>{4, 0});
  // ...while untouched ones land past it.
  const std::int64_t untouched_slot =
      layout->slot(std::vector<std::int64_t>{1, 0});
  EXPECT_LT(touched_slot, untouched_slot);
  EXPECT_LT(untouched_slot, layout->file_slots());
}

TEST(InterNodeLayoutTest, LeafCacheMappingFollowsThreadMapping) {
  const auto p = transposed_program();
  parallel::ParallelSchedule schedule(p, 8);
  const auto topo = small_topology();
  const auto identity =
      leaf_cache_of_threads(schedule, topo, LayerMask::kBoth);
  EXPECT_EQ(identity, (std::vector<std::size_t>{0, 0, 1, 1, 2, 2, 3, 3}));
  const auto storage_only =
      leaf_cache_of_threads(schedule, topo, LayerMask::kStorageOnly);
  EXPECT_EQ(storage_only,
            (std::vector<std::size_t>{0, 0, 0, 0, 1, 1, 1, 1}));
}

TEST(InterNodeLayoutTest, DifferentMappingsChangeLayout) {
  const auto p = transposed_program();
  parallel::ParallelSchedule identity(p, 8);
  parallel::ParallelSchedule permuted(p, 8,
                                      parallel::MappingKind::kPermutation2);
  const auto a = build_internode_layout(p, 0, identity, small_topology());
  const auto b = build_internode_layout(p, 0, permuted, small_topology());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  bool differs = false;
  const auto& space = p.array(0).space();
  for (std::int64_t i = 0; i < space.element_count(); ++i) {
    const auto point = space.delinearize_row_major(i);
    if (a->slot(point) != b->slot(point)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(InterNodeLayoutTest, DescribeMentionsHyperplane) {
  const auto p = transposed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto layout =
      build_internode_layout(p, 0, schedule, small_topology());
  ASSERT_NE(layout, nullptr);
  EXPECT_NE(layout->describe().find("inter-node"), std::string::npos);
  EXPECT_NE(layout->describe().find("d=(0,1)"), std::string::npos);
}

TEST(InterNodeLayoutTest, IoOnlyMaskBuildsSingleLayerPattern) {
  const auto p = transposed_program();
  const parallel::ParallelSchedule schedule(p, 8);
  const auto generic = build_internode_layout(p, 0, schedule,
                                              small_topology(),
                                              LayerMask::kIoOnly);
  const auto* layout = dynamic_cast<const InterNodeLayout*>(generic.get());
  ASSERT_NE(layout, nullptr);
  // One real layer plus the virtual root.
  EXPECT_EQ(layout->pattern().pattern_elements().size(), 2u);
}

}  // namespace
}  // namespace flo::layout
