#include "layout/partitioning.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "linalg/unimodular.hpp"

namespace flo::layout {
namespace {

parallel::ParallelSchedule schedule_for(const ir::Program& p,
                                        std::size_t threads = 4) {
  return parallel::ParallelSchedule(p, threads);
}

TEST(PartitioningTest, AlignedReferencePartitionsByRows) {
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {64, 64})
                            .nest("n", {{0, 63}, {0, 63}}, 0)
                            .read("A", {{1, 0}, {0, 1}})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  ASSERT_TRUE(part.partitioned);
  EXPECT_EQ(part.hyperplane, (linalg::IntVector{1, 0}));
  EXPECT_EQ(part.alpha, 1);
  EXPECT_EQ(part.beta, 0);
  EXPECT_EQ(part.s_min, 0);
  EXPECT_EQ(part.s_max, 63);
  EXPECT_TRUE(linalg::is_unimodular(part.transform));
  EXPECT_EQ(part.transform.row(0), part.hyperplane);
}

TEST(PartitioningTest, TransposedReferencePartitionsByColumns) {
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {64, 64})
                            .nest("n", {{0, 63}, {0, 63}}, 0)
                            .read("A", {{0, 1}, {1, 0}})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  ASSERT_TRUE(part.partitioned);
  EXPECT_EQ(part.hyperplane, (linalg::IntVector{0, 1}));
  EXPECT_EQ(part.alpha, 1);
}

TEST(PartitioningTest, MatmulSection41Example) {
  // W[i,j] in the (i, j, k) nest of Fig. 3(b), parallel on i.
  const ir::Program p = ir::ProgramBuilder("mm")
                            .array("W", {32, 32})
                            .nest("mm", {{0, 31}, {0, 31}, {0, 31}}, 0)
                            .write("W", {{1, 0, 0}, {0, 1, 0}})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  ASSERT_TRUE(part.partitioned);
  EXPECT_EQ(part.hyperplane, (linalg::IntVector{1, 0}));
}

TEST(PartitioningTest, SharedArrayNotPartitionable) {
  // X[k, j] does not depend on the parallel loop i: every thread touches
  // everything, no hyperplane separates threads.
  const ir::Program p = ir::ProgramBuilder("mm")
                            .array("X", {32, 32})
                            .nest("mm", {{0, 31}, {0, 31}, {0, 31}}, 0)
                            .read("X", {{0, 0, 1}, {0, 1, 0}})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  EXPECT_FALSE(part.partitioned);
  EXPECT_TRUE(part.transform.is_identity());
}

TEST(PartitioningTest, DiagonalReference) {
  // A[i+j, j]: rows of D must satisfy d . (Q e_2) = 0 with Q e_2 = (1, 1);
  // d = (1, -1) works and has stride 1 through Q e_1 = (1, 0).
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {127, 64})
                            .nest("n", {{0, 63}, {0, 63}}, 0)
                            .read("A", {{1, 1}, {0, 1}})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  ASSERT_TRUE(part.partitioned);
  EXPECT_EQ(part.hyperplane, (linalg::IntVector{1, -1}));
  EXPECT_EQ(part.alpha, 1);
  // s range over the box [0,127) x [0,64): -63 .. 126.
  EXPECT_EQ(part.s_min, -63);
  EXPECT_EQ(part.s_max, 126);
}

TEST(PartitioningTest, ConflictingReferencesSatisfyHeavier) {
  // A[i,j] with repeat 5 outweighs A[j,i] with repeat 1 (Eq. 5).
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {64, 64})
                            .nest("heavy", {{0, 63}, {0, 63}}, 0, 5)
                            .read("A", {{1, 0}, {0, 1}})
                            .done()
                            .nest("light", {{0, 63}, {0, 63}}, 0, 1)
                            .read("A", {{0, 1}, {1, 0}})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  ASSERT_TRUE(part.partitioned);
  EXPECT_EQ(part.hyperplane, (linalg::IntVector{1, 0}));
  EXPECT_EQ(part.satisfied_groups, 1u);
  EXPECT_EQ(part.total_groups, 2u);
  EXPECT_EQ(part.satisfied_weight, 5 * 64 * 64);
  EXPECT_EQ(part.total_weight, 6 * 64 * 64);
  EXPECT_EQ(part.primary_nest, 0u);
}

TEST(PartitioningTest, WeightOrderMatters) {
  // Same program with the transposed reference heavier: partition flips.
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {64, 64})
                            .nest("light", {{0, 63}, {0, 63}}, 0, 1)
                            .read("A", {{1, 0}, {0, 1}})
                            .done()
                            .nest("heavy", {{0, 63}, {0, 63}}, 0, 5)
                            .read("A", {{0, 1}, {1, 0}})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  ASSERT_TRUE(part.partitioned);
  EXPECT_EQ(part.hyperplane, (linalg::IntVector{0, 1}));
  EXPECT_EQ(part.primary_nest, 1u);
}

TEST(PartitioningTest, UnweightedAblationUsesProgramOrder) {
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {64, 64})
                            .nest("first", {{0, 63}, {0, 63}}, 0, 1)
                            .read("A", {{1, 0}, {0, 1}})
                            .done()
                            .nest("second", {{0, 63}, {0, 63}}, 0, 5)
                            .read("A", {{0, 1}, {1, 0}})
                            .done()
                            .build();
  PartitioningOptions options;
  options.weighted = false;
  const auto part = partition_array(p, 0, schedule_for(p), options);
  ASSERT_TRUE(part.partitioned);
  // Program order satisfies the (lighter) aligned reference first.
  EXPECT_EQ(part.hyperplane, (linalg::IntVector{1, 0}));
}

TEST(PartitioningTest, CompatibleReferencesBothSatisfied) {
  // A[i,j] and A[i,j+1] share the access matrix family: both satisfied.
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {64, 66})
                            .nest("n", {{0, 63}, {0, 63}}, 0)
                            .read("A", {{1, 0}, {0, 1}})
                            .read_ofs("A", {{1, 0}, {0, 1}}, {0, 1})
                            .done()
                            .build();
  const auto part = partition_array(p, 0, schedule_for(p));
  ASSERT_TRUE(part.partitioned);
  // Same Q => one group; both references counted in its weight.
  EXPECT_EQ(part.total_groups, 1u);
  EXPECT_EQ(part.satisfied_groups, 1u);
  EXPECT_EQ(part.total_weight, 2 * 64 * 64);
}

TEST(PartitioningTest, UnreferencedArray) {
  ir::Program p("p");
  p.add_array(ir::ArrayDecl("A", poly::DataSpace({8, 8})));
  p.add_array(ir::ArrayDecl("B", poly::DataSpace({8, 8})));
  ir::LoopNest nest("n", poly::IterationSpace({{0, 7}, {0, 7}}), 0);
  nest.add_reference({1, poly::AffineReference::identity(2, 2),
                      ir::AccessKind::kRead});
  p.add_nest(std::move(nest));
  const parallel::ParallelSchedule schedule(p, 4);
  const auto part = partition_array(p, 0, schedule);
  EXPECT_FALSE(part.partitioned);
  EXPECT_EQ(part.total_groups, 0u);
}

TEST(CollectAccessGroupsTest, GroupsByMatrixAndSortsByWeight) {
  const ir::Program p = ir::ProgramBuilder("p")
                            .array("A", {64, 64})
                            .nest("n1", {{0, 63}, {0, 63}}, 0, 2)
                            .read("A", {{1, 0}, {0, 1}})
                            .read("A", {{0, 1}, {1, 0}})
                            .done()
                            .nest("n2", {{0, 63}, {0, 63}}, 0, 3)
                            .read("A", {{0, 1}, {1, 0}})
                            .done()
                            .build();
  const auto groups = collect_access_groups(p, 0);
  ASSERT_EQ(groups.size(), 2u);
  // Transposed group weight: (2 + 3) * 4096 > aligned 2 * 4096.
  EXPECT_EQ(groups[0].q, (linalg::IntMatrix{{0, 1}, {1, 0}}));
  EXPECT_EQ(groups[0].weight, 5 * 64 * 64);
  EXPECT_EQ(groups[0].members.size(), 2u);
  EXPECT_EQ(groups[1].weight, 2 * 64 * 64);
}

}  // namespace
}  // namespace flo::layout
