#include "layout/permutation.hpp"

#include <gtest/gtest.h>

#include <set>

namespace flo::layout {
namespace {

TEST(PermutationLayoutTest, IdentityIsRowMajor) {
  const poly::DataSpace space({3, 5});
  const DimensionPermutationLayout layout(space, {0, 1});
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{1, 2}), 7);
}

TEST(PermutationLayoutTest, ReversedIsColumnMajor) {
  const poly::DataSpace space({3, 5});
  const DimensionPermutationLayout layout(space, {1, 0});
  // (r, c) -> c * 3 + r
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{1, 2}), 7);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{2, 0}), 2);
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{0, 1}), 3);
}

TEST(PermutationLayoutTest, ThreeDimensionalPermutation) {
  const poly::DataSpace space({2, 3, 4});
  const DimensionPermutationLayout layout(space, {2, 0, 1});
  // slot = a3 * (2*3) + a1 * 3 + a2
  EXPECT_EQ(layout.slot(std::vector<std::int64_t>{1, 2, 3}), 3 * 6 + 1 * 3 + 2);
}

TEST(PermutationLayoutTest, AlwaysBijective) {
  const poly::DataSpace space({3, 4, 2});
  for (const auto& order : all_dimension_orders(3)) {
    const DimensionPermutationLayout layout(space, order);
    std::set<std::int64_t> slots;
    for (std::int64_t i = 0; i < space.element_count(); ++i) {
      slots.insert(layout.slot(space.delinearize_row_major(i)));
    }
    EXPECT_EQ(slots.size(), 24u);
    EXPECT_EQ(*slots.begin(), 0);
    EXPECT_EQ(*slots.rbegin(), 23);
  }
}

TEST(PermutationLayoutTest, InvalidOrdersRejected) {
  const poly::DataSpace space({3, 5});
  EXPECT_THROW(DimensionPermutationLayout(space, {0}), std::invalid_argument);
  EXPECT_THROW(DimensionPermutationLayout(space, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW(DimensionPermutationLayout(space, {0, 2}),
               std::invalid_argument);
}

TEST(AllDimensionOrdersTest, FactorialCount) {
  EXPECT_EQ(all_dimension_orders(1).size(), 1u);
  EXPECT_EQ(all_dimension_orders(2).size(), 2u);
  // "for a three-dimensional disk-resident array, six possible file
  // layouts" (Section 5.4).
  EXPECT_EQ(all_dimension_orders(3).size(), 6u);
  EXPECT_EQ(all_dimension_orders(4).size(), 24u);
}

TEST(AllDimensionOrdersTest, FirstIsIdentity) {
  const auto orders = all_dimension_orders(3);
  EXPECT_EQ(orders.front(), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(PermutationLayoutTest, DescribeListsOrder) {
  const DimensionPermutationLayout layout(poly::DataSpace({2, 2}), {1, 0});
  const std::string s = layout.describe();
  EXPECT_NE(s.find("a2"), std::string::npos);
}

}  // namespace
}  // namespace flo::layout
