#include "layout/template_hierarchy.hpp"

#include <gtest/gtest.h>

namespace flo::layout {
namespace {

storage::StorageTopology topo(std::uint64_t io_bytes,
                              std::uint64_t storage_bytes,
                              std::size_t io_nodes = 16,
                              std::size_t storage_nodes = 4) {
  storage::TopologyConfig c = storage::TopologyConfig::paper_default();
  c.io_cache_bytes = io_bytes;
  c.storage_cache_bytes = storage_bytes;
  c.io_nodes = io_nodes;
  c.storage_nodes = storage_nodes;
  return storage::StorageTopology(c);
}

TEST(TemplateHierarchyTest, MatchesItself) {
  const auto t1 = topo(128 << 10, 256 << 10);
  const auto tmpl = HierarchyTemplate::from(t1);
  EXPECT_TRUE(tmpl.matches(t1));
}

TEST(TemplateHierarchyTest, MatchesScaledCapacities) {
  // Same shape (16 I/O caches over 4 storage caches, ratio 1:2) at twice
  // the capacity: same template family.
  const auto t1 = topo(128 << 10, 256 << 10);
  const auto t2 = topo(256 << 10, 512 << 10);
  const auto tmpl = HierarchyTemplate::from(t1);
  EXPECT_TRUE(tmpl.matches(t2));
}

TEST(TemplateHierarchyTest, RejectsDifferentRatios) {
  const auto t1 = topo(128 << 10, 256 << 10);
  const auto t3 = topo(128 << 10, 512 << 10);  // ratio 1:4, not 1:2
  const auto tmpl = HierarchyTemplate::from(t1);
  EXPECT_FALSE(tmpl.matches(t3));
}

TEST(TemplateHierarchyTest, RejectsDifferentFanIns) {
  const auto t1 = topo(128 << 10, 256 << 10, 16, 4);
  const auto t4 = topo(128 << 10, 256 << 10, 8, 4);
  const auto tmpl = HierarchyTemplate::from(t1);
  EXPECT_FALSE(tmpl.matches(t4));
}

TEST(TemplateHierarchyTest, ReferenceLayersKeepShape) {
  const auto t1 = topo(128 << 10, 256 << 10);
  const auto tmpl = HierarchyTemplate::from(t1, LayerMask::kBoth,
                                            /*reference=*/64 << 10);
  const auto layers = tmpl.reference_layers();
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].capacity_bytes, 64u << 10);
  EXPECT_EQ(layers[1].capacity_bytes, 128u << 10);  // keeps the 1:2 ratio
  EXPECT_EQ(layers[0].cache_count, 16u);
  EXPECT_EQ(layers[1].cache_count, 4u);
}

TEST(TemplateHierarchyTest, SingleLayerMask) {
  const auto t1 = topo(128 << 10, 256 << 10);
  const auto tmpl = HierarchyTemplate::from(t1, LayerMask::kIoOnly);
  EXPECT_EQ(tmpl.layer_count(), 1u);
  EXPECT_TRUE(tmpl.matches(t1, LayerMask::kIoOnly));
  EXPECT_FALSE(tmpl.matches(t1, LayerMask::kBoth));
}

TEST(TemplateHierarchyTest, DescribeMentionsShape) {
  const auto tmpl = HierarchyTemplate::from(topo(128 << 10, 256 << 10));
  const std::string s = tmpl.describe();
  EXPECT_NE(s.find("16 caches"), std::string::npos);
  EXPECT_NE(s.find("4 caches"), std::string::npos);
}

}  // namespace
}  // namespace flo::layout
