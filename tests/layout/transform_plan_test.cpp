#include "layout/transform_plan.hpp"

#include <gtest/gtest.h>

namespace flo::layout {
namespace {

ArrayTransformPlan optimized_plan() {
  ArrayTransformPlan plan;
  plan.array_name = "A";
  plan.optimized = true;
  plan.partitioning.partitioned = true;
  plan.partitioning.transform = linalg::IntMatrix{{0, 1}, {1, 0}};
  plan.partitioning.hyperplane = {0, 1};
  plan.partitioning.alpha = 1;
  plan.partitioning.beta = 0;
  plan.partitioning.s_min = 0;
  plan.partitioning.s_max = 63;
  plan.partitioning.satisfied_groups = 1;
  plan.partitioning.total_groups = 2;
  plan.partitioning.satisfied_weight = 100;
  plan.partitioning.total_weight = 150;
  plan.pattern_elements = {128, 512, 2048};
  plan.chunk_elements = 64;
  return plan;
}

TEST(ArrayTransformPlanTest, OptimizedRendering) {
  const std::string s = optimized_plan().to_string();
  EXPECT_NE(s.find("A: optimized"), std::string::npos);
  EXPECT_NE(s.find("d = (0, 1)"), std::string::npos);
  EXPECT_NE(s.find("1*i_u + 0"), std::string::npos);
  EXPECT_NE(s.find("chunk = 64"), std::string::npos);
  EXPECT_NE(s.find("1/2 access-matrix groups"), std::string::npos);
  EXPECT_NE(s.find("100/150"), std::string::npos);
}

TEST(ArrayTransformPlanTest, UnoptimizedRendering) {
  ArrayTransformPlan plan;
  plan.array_name = "X";
  const std::string s = plan.to_string();
  EXPECT_NE(s.find("X: not optimized"), std::string::npos);
}

TEST(ProgramTransformPlanTest, CountsAndFraction) {
  ProgramTransformPlan plan;
  plan.program_name = "app";
  plan.arrays.push_back(optimized_plan());
  ArrayTransformPlan skipped;
  skipped.array_name = "X";
  plan.arrays.push_back(skipped);
  EXPECT_EQ(plan.optimized_count(), 1u);
  EXPECT_DOUBLE_EQ(plan.optimized_fraction(), 0.5);
  const std::string s = plan.to_string();
  EXPECT_NE(s.find("1/2 arrays optimized"), std::string::npos);
}

TEST(ProgramTransformPlanTest, EmptyPlan) {
  ProgramTransformPlan plan;
  EXPECT_EQ(plan.optimized_fraction(), 0.0);
}

}  // namespace
}  // namespace flo::layout
