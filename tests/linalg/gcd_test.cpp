#include "linalg/gcd.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace flo::linalg {
namespace {

TEST(GcdTest, BasicPairs) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(18, 12), 6);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
  EXPECT_EQ(gcd(0, 0), 0);
}

TEST(GcdTest, NegativeArguments) {
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(12, -18), 6);
  EXPECT_EQ(gcd(-12, -18), 6);
}

TEST(GcdTest, Int64MinRejected) {
  EXPECT_THROW(gcd(std::numeric_limits<std::int64_t>::min(), 2),
               std::overflow_error);
}

TEST(GcdTest, SpanGcd) {
  const std::vector<std::int64_t> v{12, 18, 30};
  EXPECT_EQ(gcd(std::span<const std::int64_t>(v)), 6);
  const std::vector<std::int64_t> zero{0, 0};
  EXPECT_EQ(gcd(std::span<const std::int64_t>(zero)), 0);
  const std::vector<std::int64_t> empty;
  EXPECT_EQ(gcd(std::span<const std::int64_t>(empty)), 0);
}

TEST(GcdTest, SpanShortCircuitsOnOne) {
  const std::vector<std::int64_t> v{3, 5, 100000};
  EXPECT_EQ(gcd(std::span<const std::int64_t>(v)), 1);
}

TEST(ExtendedGcdTest, BezoutIdentityHolds) {
  for (std::int64_t a = -12; a <= 12; ++a) {
    for (std::int64_t b = -12; b <= 12; ++b) {
      const ExtendedGcd eg = extended_gcd(a, b);
      EXPECT_EQ(eg.x * a + eg.y * b, eg.g) << "a=" << a << " b=" << b;
      EXPECT_EQ(eg.g, gcd(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(ExtendedGcdTest, ZeroZero) {
  const ExtendedGcd eg = extended_gcd(0, 0);
  EXPECT_EQ(eg.g, 0);
}

TEST(LcmTest, Basics) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(-4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(7, 7), 7);
}

TEST(CheckedArithmeticTest, DetectsOverflow) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(checked_add(big, 1), std::overflow_error);
  EXPECT_THROW(checked_sub(std::numeric_limits<std::int64_t>::min(), 1),
               std::overflow_error);
  EXPECT_THROW(checked_mul(big, 2), std::overflow_error);
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_sub(2, 3), -1);
  EXPECT_EQ(checked_mul(-2, 3), -6);
}

class GcdPropertyTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GcdPropertyTest, GcdDividesBoth) {
  const std::int64_t a = GetParam();
  for (std::int64_t b : {1, 2, 17, 128, 999}) {
    const std::int64_t g = gcd(a, b);
    if (g != 0) {
      EXPECT_EQ(a % g, 0);
      EXPECT_EQ(b % g, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Values, GcdPropertyTest,
                         ::testing::Values(0, 1, 2, 6, 17, 24, 100, 3600,
                                           -42, -99991));

}  // namespace
}  // namespace flo::linalg
