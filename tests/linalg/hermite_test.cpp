#include "linalg/hermite.hpp"

#include <gtest/gtest.h>

#include "linalg/unimodular.hpp"

namespace flo::linalg {
namespace {

void expect_invariants(const IntMatrix& a) {
  const HermiteResult hf = hermite_form(a);
  // u * a == h holds exactly.
  EXPECT_EQ(hf.u * a, hf.h);
  // u is unimodular.
  EXPECT_TRUE(is_unimodular(hf.u));
  // Zero rows are at the bottom.
  bool seen_zero = false;
  for (std::size_t r = 0; r < hf.h.rows(); ++r) {
    bool zero = true;
    for (std::size_t c = 0; c < hf.h.cols(); ++c) {
      if (hf.h.at(r, c) != 0) zero = false;
    }
    if (zero) {
      seen_zero = true;
    } else {
      EXPECT_FALSE(seen_zero) << "nonzero row below a zero row";
    }
  }
  // Echelon: pivots move strictly right; pivots positive.
  std::size_t last_pivot_col = 0;
  bool first = true;
  for (std::size_t r = 0; r < hf.rank; ++r) {
    std::size_t c = 0;
    while (c < hf.h.cols() && hf.h.at(r, c) == 0) ++c;
    ASSERT_LT(c, hf.h.cols());
    EXPECT_GT(hf.h.at(r, c), 0);
    if (!first) {
      EXPECT_GT(c, last_pivot_col);
    }
    last_pivot_col = c;
    first = false;
  }
}

TEST(HermiteTest, Identity) {
  const HermiteResult hf = hermite_form(IntMatrix::identity(3));
  EXPECT_TRUE(hf.h.is_identity());
  EXPECT_TRUE(hf.u.is_identity());
  EXPECT_EQ(hf.rank, 3u);
}

TEST(HermiteTest, SimpleReduction) {
  IntMatrix a{{4, 6}, {2, 2}};
  const HermiteResult hf = hermite_form(a);
  EXPECT_EQ(hf.rank, 2u);
  expect_invariants(a);
}

TEST(HermiteTest, RankDeficient) {
  IntMatrix a{{1, 2}, {2, 4}, {3, 6}};
  const HermiteResult hf = hermite_form(a);
  EXPECT_EQ(hf.rank, 1u);
  expect_invariants(a);
}

TEST(HermiteTest, ZeroMatrix) {
  IntMatrix a(2, 3);
  const HermiteResult hf = hermite_form(a);
  EXPECT_EQ(hf.rank, 0u);
  EXPECT_TRUE(hf.h.is_zero());
  EXPECT_TRUE(is_unimodular(hf.u));
}

TEST(HermiteTest, WideMatrix) {
  IntMatrix a{{2, 4, 6, 8}, {1, 3, 5, 7}};
  expect_invariants(a);
}

TEST(HermiteTest, TallMatrix) {
  IntMatrix a{{3}, {6}, {4}};
  const HermiteResult hf = hermite_form(a);
  EXPECT_EQ(hf.rank, 1u);
  EXPECT_EQ(hf.h.at(0, 0), 1);  // gcd(3, 6, 4) == 1
  expect_invariants(a);
}

TEST(HermiteTest, NegativeEntries) {
  IntMatrix a{{-4, 2}, {6, -3}};
  expect_invariants(a);
}

TEST(HermiteTest, PivotsReducedAbove) {
  // Entries above a pivot must be reduced into [0, pivot).
  IntMatrix a{{1, 7}, {0, 3}};
  const HermiteResult hf = hermite_form(a);
  ASSERT_EQ(hf.rank, 2u);
  EXPECT_GE(hf.h.at(0, 1), 0);
  EXPECT_LT(hf.h.at(0, 1), hf.h.at(1, 1));
}

class HermitePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(HermitePropertyTest, InvariantsHoldOn2x2) {
  const auto [a, b, c, d] = GetParam();
  IntMatrix m{{a, b}, {c, d}};
  expect_invariants(m);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HermitePropertyTest,
    ::testing::Combine(::testing::Values(-3, 0, 2, 7),
                       ::testing::Values(-5, 0, 1),
                       ::testing::Values(0, 4, -2),
                       ::testing::Values(-1, 0, 3, 6)));

}  // namespace
}  // namespace flo::linalg
