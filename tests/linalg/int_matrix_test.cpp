#include "linalg/int_matrix.hpp"

#include <gtest/gtest.h>

namespace flo::linalg {
namespace {

TEST(IntMatrixTest, ConstructionAndIndexing) {
  IntMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(m.is_zero());
  m.at(1, 2) = 7;
  EXPECT_EQ(m.at(1, 2), 7);
  EXPECT_FALSE(m.is_zero());
}

TEST(IntMatrixTest, InitializerList) {
  IntMatrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.at(0, 1), 2);
  EXPECT_EQ(m.at(1, 0), 3);
  EXPECT_THROW((IntMatrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(IntMatrixTest, IdentityAndDiagonal) {
  EXPECT_TRUE(IntMatrix::identity(3).is_identity());
  const std::vector<std::int64_t> d{2, 5};
  IntMatrix m = IntMatrix::diagonal(d);
  EXPECT_EQ(m.at(0, 0), 2);
  EXPECT_EQ(m.at(1, 1), 5);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(IntMatrixTest, OutOfRangeThrows) {
  IntMatrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(IntMatrixTest, Multiply) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix b{{5, 6}, {7, 8}};
  IntMatrix c = a * b;
  EXPECT_EQ(c, (IntMatrix{{19, 22}, {43, 50}}));
}

TEST(IntMatrixTest, MultiplyDimensionMismatch) {
  IntMatrix a(2, 3);
  IntMatrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(IntMatrixTest, MatrixVectorProduct) {
  IntMatrix a{{1, 0, 2}, {0, 1, 0}};
  const std::vector<std::int64_t> v{3, 4, 5};
  const IntVector out = a * v;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 13);
  EXPECT_EQ(out[1], 4);
}

TEST(IntMatrixTest, AddSubtract) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix b{{10, 20}, {30, 40}};
  EXPECT_EQ(a + b, (IntMatrix{{11, 22}, {33, 44}}));
  EXPECT_EQ(b - a, (IntMatrix{{9, 18}, {27, 36}}));
}

TEST(IntMatrixTest, Transpose) {
  IntMatrix a{{1, 2, 3}, {4, 5, 6}};
  IntMatrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 1), 6);
  EXPECT_EQ(t.transposed(), a);
}

TEST(IntMatrixTest, SelectColumnsAndWithoutRow) {
  IntMatrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::vector<std::size_t> cols{0, 2};
  IntMatrix sel = a.select_columns(cols);
  EXPECT_EQ(sel, (IntMatrix{{1, 3}, {4, 6}, {7, 9}}));
  IntMatrix wo = a.without_row(1);
  EXPECT_EQ(wo, (IntMatrix{{1, 2, 3}, {7, 8, 9}}));
}

TEST(IntMatrixTest, RowOperations) {
  IntMatrix a{{1, 2}, {3, 4}};
  a.swap_rows(0, 1);
  EXPECT_EQ(a, (IntMatrix{{3, 4}, {1, 2}}));
  a.scale_row(0, -1);
  EXPECT_EQ(a, (IntMatrix{{-3, -4}, {1, 2}}));
  a.add_scaled_row(0, 1, 3);
  EXPECT_EQ(a, (IntMatrix{{0, 2}, {1, 2}}));
}

TEST(IntMatrixTest, DeterminantBasics) {
  EXPECT_EQ((IntMatrix{{2, 0}, {0, 3}}).determinant(), 6);
  EXPECT_EQ((IntMatrix{{0, 1}, {1, 0}}).determinant(), -1);
  EXPECT_EQ((IntMatrix{{1, 2}, {2, 4}}).determinant(), 0);
  EXPECT_EQ(IntMatrix::identity(5).determinant(), 1);
  EXPECT_THROW(IntMatrix(2, 3).determinant(), std::invalid_argument);
}

TEST(IntMatrixTest, DeterminantNeedsPivoting) {
  // Leading zero forces a row swap inside Bareiss elimination.
  IntMatrix m{{0, 2, 1}, {1, 0, 0}, {0, 1, 1}};
  EXPECT_EQ(m.determinant(), -1);
}

TEST(IntMatrixTest, Determinant3x3) {
  IntMatrix m{{2, -3, 1}, {2, 0, -1}, {1, 4, 5}};
  EXPECT_EQ(m.determinant(), 49);
}

TEST(IntMatrixTest, Rank) {
  EXPECT_EQ(IntMatrix::identity(4).rank(), 4u);
  EXPECT_EQ((IntMatrix{{1, 2}, {2, 4}}).rank(), 1u);
  EXPECT_EQ(IntMatrix(3, 3).rank(), 0u);
  EXPECT_EQ((IntMatrix{{1, 0, 0}, {0, 1, 0}}).rank(), 2u);
  // Rank is invariant under scaling rows.
  IntMatrix m{{2, 4, 6}, {1, 2, 3}, {0, 0, 5}};
  EXPECT_EQ(m.rank(), 2u);
}

TEST(IntMatrixTest, RowTimesMatrix) {
  IntMatrix m{{1, 2}, {3, 4}};
  const std::vector<std::int64_t> v{1, 1};
  const IntVector out = row_times_matrix(v, m);
  EXPECT_EQ(out, (IntVector{4, 6}));
}

TEST(IntMatrixTest, DotProduct) {
  const std::vector<std::int64_t> a{1, 2, 3};
  const std::vector<std::int64_t> b{4, 5, 6};
  EXPECT_EQ(dot(a, b), 32);
  const std::vector<std::int64_t> c{1};
  EXPECT_THROW(dot(a, c), std::invalid_argument);
}

TEST(IntMatrixTest, MakePrimitive) {
  IntVector v{4, -8, 12};
  make_primitive(v);
  EXPECT_EQ(v, (IntVector{1, -2, 3}));
  IntVector w{-3, 6};
  make_primitive(w);
  EXPECT_EQ(w, (IntVector{1, -2}));  // sign flipped: first nonzero positive
  IntVector zero{0, 0};
  make_primitive(zero);
  EXPECT_EQ(zero, (IntVector{0, 0}));
}

TEST(IntMatrixTest, IsNonzero) {
  const IntVector z{0, 0, 0};
  const IntVector nz{0, 1, 0};
  EXPECT_FALSE(is_nonzero(z));
  EXPECT_TRUE(is_nonzero(nz));
}

TEST(IntMatrixTest, ToStringRendersRows) {
  IntMatrix m{{1, 0}, {0, 1}};
  EXPECT_EQ(m.to_string(), "[ 1 0 ]\n[ 0 1 ]");
}

class DeterminantPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeterminantPropertyTest, DetOfProductIsProductOfDets) {
  const auto [sa, sb] = GetParam();
  // Small integer matrices built from the parameters.
  IntMatrix a{{1, sa}, {0, 1}};
  IntMatrix b{{1, 0}, {sb, 1}};
  const IntMatrix ab = a * b;
  EXPECT_EQ(ab.determinant(), a.determinant() * b.determinant());
}

INSTANTIATE_TEST_SUITE_P(
    Shears, DeterminantPropertyTest,
    ::testing::Combine(::testing::Values(-3, -1, 0, 2, 5),
                       ::testing::Values(-2, 0, 1, 4)));

}  // namespace
}  // namespace flo::linalg
