#include "linalg/nullspace.hpp"

#include <gtest/gtest.h>

namespace flo::linalg {
namespace {

TEST(NullspaceTest, FullRankHasTrivialLeftNullSpace) {
  EXPECT_TRUE(left_null_space(IntMatrix::identity(3)).empty());
  EXPECT_TRUE(left_null_space(IntMatrix{{2, 0}, {1, 1}}).empty());
}

TEST(NullspaceTest, DuplicatedRow) {
  IntMatrix m{{1, 2}, {1, 2}};
  const auto basis = left_null_space(m);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_TRUE(in_left_null_space(basis[0], m));
  EXPECT_TRUE(is_nonzero(basis[0]));
}

TEST(NullspaceTest, MatmulExample) {
  // The running example of Section 4.1: W[i,j] in an (i,j,k) nest
  // parallelized on i. Q*E has left null vector (1, 0): partition by rows.
  IntMatrix q{{1, 0, 0}, {0, 1, 0}};
  // E: columns e2, e3 of the 3-dim iteration space.
  IntMatrix e{{0, 0}, {1, 0}, {0, 1}};
  const IntMatrix m = q * e;
  const auto basis = left_null_space(m);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0], (IntVector{1, 0}));
}

TEST(NullspaceTest, TransposedReference) {
  // A[j, i] in an (i, j) nest parallelized on i: the partitioning
  // hyperplane is the second data dimension.
  IntMatrix q{{0, 1}, {1, 0}};
  IntMatrix e{{0}, {1}};  // direction basis for u = 0 in 2 dims
  const auto basis = left_null_space(q * e);
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0], (IntVector{0, 1}));
}

TEST(NullspaceTest, ZeroMatrixHasFullLeftNullSpace) {
  IntMatrix m(3, 2);
  const auto basis = left_null_space(m);
  EXPECT_EQ(basis.size(), 3u);
  for (const auto& v : basis) {
    EXPECT_TRUE(in_left_null_space(v, m));
  }
}

TEST(NullspaceTest, ZeroWidthMatrix) {
  IntMatrix m(2, 0);
  const auto basis = left_null_space(m);
  EXPECT_EQ(basis.size(), 2u);
}

TEST(NullspaceTest, BasisVectorsArePrimitive) {
  IntMatrix m{{2, 4}, {1, 2}, {3, 6}};  // rank 1, nullity 2
  const auto basis = left_null_space(m.transposed());
  for (const auto& v : basis) {
    IntVector copy = v;
    make_primitive(copy);
    EXPECT_EQ(copy, v) << "basis vector not primitive";
  }
}

TEST(NullspaceTest, RightNullSpace) {
  IntMatrix m{{1, 2, 3}};
  const auto basis = null_space(m);
  EXPECT_EQ(basis.size(), 2u);
  for (const auto& v : basis) {
    const IntVector prod = m * v;
    EXPECT_FALSE(is_nonzero(prod));
  }
}

TEST(NullspaceTest, InLeftNullSpaceDimensionMismatch) {
  IntMatrix m(2, 2);
  const IntVector v{1, 2, 3};
  EXPECT_THROW(in_left_null_space(v, m), std::invalid_argument);
}

TEST(HconcatTest, ConcatenatesInOrder) {
  IntMatrix a{{1}, {2}};
  IntMatrix b{{3, 4}, {5, 6}};
  const IntMatrix c = hconcat({a, b});
  EXPECT_EQ(c, (IntMatrix{{1, 3, 4}, {2, 5, 6}}));
}

TEST(HconcatTest, RowMismatchThrows) {
  EXPECT_THROW(hconcat({IntMatrix(2, 1), IntMatrix(3, 1)}),
               std::invalid_argument);
}

TEST(HconcatTest, EmptyListGivesEmptyMatrix) {
  EXPECT_TRUE(hconcat({}).empty());
}

TEST(CommonLeftNullTest, ConsistentConstraints) {
  // Two constraint blocks sharing the left null vector (0, 1).
  IntMatrix a{{1}, {0}};
  IntMatrix b{{2}, {0}};
  const IntVector d = common_left_null_vector({a, b});
  EXPECT_EQ(d, (IntVector{0, 1}));
}

TEST(CommonLeftNullTest, ConflictingConstraints) {
  // (0,1) annihilates a; (1,0) annihilates b; nothing annihilates both.
  IntMatrix a{{1}, {0}};
  IntMatrix b{{0}, {1}};
  EXPECT_TRUE(common_left_null_vector({a, b}).empty());
}

}  // namespace
}  // namespace flo::linalg
