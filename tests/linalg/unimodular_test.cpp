#include "linalg/unimodular.hpp"

#include <gtest/gtest.h>

#include "linalg/gcd.hpp"

namespace flo::linalg {
namespace {

TEST(IsUnimodularTest, Basics) {
  EXPECT_TRUE(is_unimodular(IntMatrix::identity(3)));
  EXPECT_TRUE(is_unimodular(IntMatrix{{0, 1}, {1, 0}}));  // det -1
  EXPECT_FALSE(is_unimodular(IntMatrix{{2, 0}, {0, 1}}));
  EXPECT_FALSE(is_unimodular(IntMatrix(2, 3)));  // not square
  EXPECT_FALSE(is_unimodular(IntMatrix{}));      // empty
}

TEST(CompleteToUnimodularTest, UnitVector) {
  const IntVector d{0, 1, 0};
  const IntMatrix m = complete_to_unimodular(d, 0);
  EXPECT_TRUE(is_unimodular(m));
  EXPECT_EQ(m.row(0), d);
}

TEST(CompleteToUnimodularTest, GeneralPrimitiveRow) {
  const IntVector d{3, 5};
  const IntMatrix m = complete_to_unimodular(d, 0);
  EXPECT_TRUE(is_unimodular(m));
  EXPECT_EQ(m.row(0), d);
}

TEST(CompleteToUnimodularTest, PlacesRowAtRequestedIndex) {
  const IntVector d{2, 3, 5};
  const IntMatrix m = complete_to_unimodular(d, 2);
  EXPECT_TRUE(is_unimodular(m));
  EXPECT_EQ(m.row(2), d);
}

TEST(CompleteToUnimodularTest, NegativeLeadingEntry) {
  const IntVector d{-1, 0};
  const IntMatrix m = complete_to_unimodular(d, 0);
  EXPECT_TRUE(is_unimodular(m));
  EXPECT_EQ(m.row(0), d);
}

TEST(CompleteToUnimodularTest, RejectsBadInput) {
  EXPECT_THROW(complete_to_unimodular(IntVector{0, 0}, 0),
               std::invalid_argument);
  EXPECT_THROW(complete_to_unimodular(IntVector{2, 4}, 0),
               std::invalid_argument);  // not primitive
  EXPECT_THROW(complete_to_unimodular(IntVector{1, 0}, 2),
               std::invalid_argument);  // bad index
  EXPECT_THROW(complete_to_unimodular(IntVector{}, 0), std::invalid_argument);
}

TEST(UnimodularInverseTest, RoundTrip) {
  IntMatrix m{{1, 2}, {0, 1}};
  const IntMatrix inv = unimodular_inverse(m);
  EXPECT_TRUE((m * inv).is_identity());
  EXPECT_TRUE((inv * m).is_identity());
}

TEST(UnimodularInverseTest, Permutation) {
  IntMatrix p{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}};
  const IntMatrix inv = unimodular_inverse(p);
  EXPECT_TRUE((p * inv).is_identity());
}

TEST(UnimodularInverseTest, RejectsNonUnimodular) {
  EXPECT_THROW(unimodular_inverse(IntMatrix{{2, 0}, {0, 1}}),
               std::invalid_argument);
}

struct CompletionCase {
  IntVector d;
  std::size_t row;
};

class CompletionPropertyTest
    : public ::testing::TestWithParam<CompletionCase> {};

TEST_P(CompletionPropertyTest, RowPlacedAndUnimodular) {
  const auto& param = GetParam();
  const IntMatrix m = complete_to_unimodular(param.d, param.row);
  EXPECT_TRUE(is_unimodular(m));
  EXPECT_EQ(m.row(param.row), param.d);
  // The inverse is integral and exact.
  const IntMatrix inv = unimodular_inverse(m);
  EXPECT_TRUE((m * inv).is_identity());
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, CompletionPropertyTest,
    ::testing::Values(CompletionCase{{1, 0}, 0}, CompletionCase{{0, 1}, 1},
                      CompletionCase{{1, 1}, 0}, CompletionCase{{2, 3}, 1},
                      CompletionCase{{-3, 2}, 0},
                      CompletionCase{{5, -7, 3}, 1},
                      CompletionCase{{1, 1, 1, 1}, 3},
                      CompletionCase{{0, 0, 1}, 0},
                      CompletionCase{{12, 5, 7}, 2},
                      CompletionCase{{-1, -1, -3}, 0}));

}  // namespace
}  // namespace flo::linalg
