// Registry determinism across engine worker counts: counters are
// commutative sums and the compile cache dedups by signature, so a grid
// run under 1 worker and under N workers must produce identical counter
// values (timing histograms and utilization metrics are exempt — they
// measure the schedule, not the work).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "core/engine.hpp"
#include "ir/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace flo::core {
namespace {

ir::Program tiny_program(std::int64_t n = 32) {
  return ir::ProgramBuilder("tiny")
      .array("A", {n, n})
      .nest("scan", {{0, n - 1}, {0, n - 1}}, 0, /*repeat=*/2)
      .read("A", {{1, 0}, {0, 1}})
      .write("A", {{0, 1}, {1, 0}})
      .done()
      .build();
}

/// Counter values by name, excluding the scheduling-dependent ones.
std::map<std::string, double> deterministic_counters() {
  std::map<std::string, double> out;
  for (const auto& sample : obs::registry().snapshot()) {
    if (sample.kind != obs::MetricKind::kCounter) continue;
    if (sample.name == "engine.worker_busy_us") continue;
    out[sample.name] = sample.value;
  }
  return out;
}

std::map<std::string, double> run_grid_with_workers(std::size_t workers) {
  const auto p = tiny_program();
  ExperimentConfig base;
  ExperimentConfig inter = base;
  inter.scheme = Scheme::kInterNode;

  obs::registry().reset();
  obs::recorder().clear();
  ExperimentEngine engine(EngineOptions{workers});
  // Duplicate configs exercise the compile cache; distinct ones exercise
  // the per-cell counters.
  engine.run({{"base", &p, base},
              {"inter", &p, inter},
              {"base2", &p, base},
              {"inter2", &p, inter}});
  return deterministic_counters();
}

TEST(ObsDeterminismTest, CountersIdenticalAcrossWorkerCounts) {
  obs::set_enabled(true);
  const auto serial = run_grid_with_workers(1);
  const auto parallel4 = run_grid_with_workers(4);
  obs::set_enabled(false);
  obs::registry().reset();
  obs::recorder().clear();

  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel4);
  // The headline counters exist and carry the expected exact values.
  ASSERT_TRUE(serial.count("engine.cells_total"));
  EXPECT_EQ(serial.at("engine.cells_total"), 4.0);
  ASSERT_TRUE(serial.count("engine.compile_cache_misses"));
  EXPECT_EQ(serial.at("engine.compile_cache_misses"), 2.0);
  ASSERT_TRUE(serial.count("engine.compile_cache_hits"));
  EXPECT_EQ(serial.at("engine.compile_cache_hits"), 2.0);
  ASSERT_TRUE(serial.count("sim.runs"));
  EXPECT_EQ(serial.at("sim.runs"), 4.0);
}

TEST(ObsDeterminismTest, SimulatorSpansIdenticalAcrossWorkerCounts) {
  const auto collect = [](std::size_t workers) {
    const auto p = tiny_program();
    ExperimentConfig base;
    ExperimentConfig inter = base;
    inter.scheme = Scheme::kInterNode;
    obs::registry().reset();
    obs::recorder().clear();
    ExperimentEngine engine(EngineOptions{workers});
    engine.run({{"base", &p, base}, {"inter", &p, inter}});
    // Virtual-time spans carry deterministic timestamps; the lane id
    // depends on thread scheduling, so compare (start, duration, args)
    // multisets only.
    std::multiset<std::tuple<double, double, std::string>> out;
    for (const auto& span : obs::recorder().snapshot()) {
      if (!span.virtual_time) continue;
      std::string args;
      for (const auto& [k, v] : span.args) args += k + "=" + v + ";";
      out.insert({span.start_us, span.duration_us, args});
    }
    return out;
  };

  obs::set_enabled(true);
  const auto serial = collect(1);
  const auto parallel4 = collect(4);
  obs::set_enabled(false);
  obs::registry().reset();
  obs::recorder().clear();

  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel4);
}

TEST(ObsDeterminismTest, DisabledRunTouchesNoMetrics) {
  const auto p = tiny_program();
  ExperimentConfig base;
  obs::registry().reset();
  obs::recorder().clear();
  ASSERT_FALSE(obs::enabled());
  ExperimentEngine engine(EngineOptions{2});
  engine.run({{"base", &p, base}});
  for (const auto& sample : obs::registry().snapshot()) {
    EXPECT_EQ(sample.value, 0.0) << sample.name;
    EXPECT_EQ(sample.count, 0u) << sample.name;
  }
  EXPECT_TRUE(obs::recorder().snapshot().empty());
}

}  // namespace
}  // namespace flo::core
