#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace flo::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, SummarizesSamples) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.observe(2.0);
  h.observe(-1.0);
  h.observe(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(RegistryTest, CreatesOnFirstUseAndKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("a.counter");
  c.add(3);
  // Same name returns the same object.
  EXPECT_EQ(&reg.counter("a.counter"), &c);
  EXPECT_EQ(reg.counter("a.counter").value(), 3u);
  // reset() zeroes values but the handle stays valid.
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("a.counter").value(), 1u);
}

TEST(RegistryTest, KindClashThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  reg.histogram("h");
  EXPECT_THROW(reg.counter("h"), std::logic_error);
}

TEST(RegistryTest, SnapshotIsNameSorted) {
  Registry reg;
  reg.counter("z.last").add(1);
  reg.gauge("a.first").set(2);
  reg.histogram("m.middle").observe(3.0);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.first");
  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);
  EXPECT_EQ(samples[0].value, 2.0);
  EXPECT_EQ(samples[1].name, "m.middle");
  EXPECT_EQ(samples[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(samples[1].count, 1u);
  EXPECT_EQ(samples[1].sum, 3.0);
  EXPECT_EQ(samples[2].name, "z.last");
  EXPECT_EQ(samples[2].kind, MetricKind::kCounter);
  EXPECT_EQ(samples[2].value, 1.0);
}

TEST(EnabledTest, DefaultsOffAndToggles) {
  // The suite never leaves this on; instrumented code paths treat it as a
  // process-wide switch.
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace flo::obs
