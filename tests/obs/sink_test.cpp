// Golden-file tests for the sink writers: the JSONL and Chrome-trace
// formats are compared byte-for-byte against hand-written expectations, so
// any format drift is a deliberate, reviewed change.
#include "obs/sink.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace flo::obs {
namespace {

std::vector<MetricSample> sample_metrics() {
  MetricSample counter;
  counter.name = "engine.cells_total";
  counter.kind = MetricKind::kCounter;
  counter.value = 4;
  MetricSample gauge;
  gauge.name = "engine.workers";
  gauge.kind = MetricKind::kGauge;
  gauge.value = 2;
  MetricSample histogram;
  histogram.name = "sim.exec_seconds";
  histogram.kind = MetricKind::kHistogram;
  histogram.count = 2;
  histogram.sum = 14.5;
  histogram.min = 6.25;
  histogram.max = 8.25;
  histogram.value = histogram.sum;
  return {counter, gauge, histogram};
}

std::vector<SpanEvent> sample_spans() {
  SpanEvent wall;
  wall.name = "engine.cell";
  wall.category = "engine";
  wall.tid = 1;
  wall.start_us = 100;
  wall.duration_us = 250.5;
  wall.args = {{"label", "bt/base"}};
  SpanEvent virt;
  virt.name = "sim.phase";
  virt.category = "sim";
  virt.tid = 0;
  virt.start_us = 0;
  virt.duration_us = 1.0e6;
  virt.virtual_time = true;
  virt.args = {{"phase", "0"}, {"rep", "1"}};
  return {wall, virt};
}

TEST(SinkModeTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_sink_mode("off"), SinkMode::kOff);
  EXPECT_EQ(parse_sink_mode("text"), SinkMode::kText);
  EXPECT_EQ(parse_sink_mode("json"), SinkMode::kJson);
  EXPECT_EQ(parse_sink_mode("chrome"), SinkMode::kChrome);
  EXPECT_EQ(parse_sink_mode("bogus"), SinkMode::kOff);
  EXPECT_STREQ(sink_mode_name(SinkMode::kJson), "json");
  EXPECT_STREQ(sink_mode_name(SinkMode::kChrome), "chrome");
}

TEST(SinkModeTest, DefaultPaths) {
  EXPECT_EQ(default_sink_path(SinkMode::kOff, "x"), "");
  EXPECT_EQ(default_sink_path(SinkMode::kText, "x"), "x.metrics.txt");
  EXPECT_EQ(default_sink_path(SinkMode::kJson, "x"), "x.metrics.jsonl");
  EXPECT_EQ(default_sink_path(SinkMode::kChrome, "x"), "x.trace.json");
}

TEST(JsonlSinkTest, GoldenOutput) {
  std::ostringstream os;
  write_jsonl(os, sample_metrics(), sample_spans());
  EXPECT_EQ(os.str(),
            "{\"type\":\"counter\",\"name\":\"engine.cells_total\","
            "\"value\":4}\n"
            "{\"type\":\"gauge\",\"name\":\"engine.workers\",\"value\":2}\n"
            "{\"type\":\"histogram\",\"name\":\"sim.exec_seconds\","
            "\"count\":2,\"sum\":14.5,\"min\":6.25,\"max\":8.25}\n"
            "{\"type\":\"span\",\"name\":\"engine.cell\",\"cat\":\"engine\","
            "\"tid\":1,\"ts\":100,\"dur\":250.5,\"clock\":\"wall\","
            "\"args\":{\"label\":\"bt/base\"}}\n"
            "{\"type\":\"span\",\"name\":\"sim.phase\",\"cat\":\"sim\","
            "\"tid\":0,\"ts\":0,\"dur\":1000000,\"clock\":\"virtual\","
            "\"args\":{\"phase\":\"0\",\"rep\":\"1\"}}\n");
}

TEST(ChromeSinkTest, GoldenOutput) {
  std::ostringstream os;
  write_chrome_trace(os, sample_metrics(), sample_spans());
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
            "\"args\":{\"name\":\"wall clock\"}},\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
            "\"args\":{\"name\":\"virtual clock (simulation)\"}},\n"
            "{\"name\":\"engine.cell\",\"cat\":\"engine\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":1,\"ts\":100,\"dur\":250.5,"
            "\"args\":{\"label\":\"bt/base\"}},\n"
            "{\"name\":\"sim.phase\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":2,"
            "\"tid\":0,\"ts\":0,\"dur\":1000000,"
            "\"args\":{\"phase\":\"0\",\"rep\":\"1\"}},\n"
            "{\"name\":\"metrics\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
            "\"args\":{\"engine.cells_total\":4,\"engine.workers\":2}}\n"
            "]}\n");
}

TEST(TextSinkTest, GoldenOutput) {
  std::ostringstream os;
  write_text(os, sample_metrics(), sample_spans());
  EXPECT_EQ(os.str(),
            "# metrics\n"
            "engine.cells_total (counter) = 4\n"
            "engine.workers (gauge) = 2\n"
            "sim.exec_seconds (histogram) count=2 sum=14.5 min=6.25 "
            "max=8.25\n"
            "# spans\n"
            "engine.cell count=1 total=0.0002505s\n"
            "sim.phase count=1 total=1s\n");
}

TEST(JsonlSinkTest, EscapesStrings) {
  MetricSample m;
  m.name = "weird\"name\n";
  m.kind = MetricKind::kCounter;
  m.value = 1;
  std::ostringstream os;
  write_jsonl(os, {m}, {});
  EXPECT_EQ(os.str(),
            "{\"type\":\"counter\",\"name\":\"weird\\\"name\\n\","
            "\"value\":1}\n");
}

// End-to-end determinism: with a test clock installed, spans recorded via
// ScopedSpan serialize byte-identically run to run.
TEST(ScopedSpanTest, DeterministicUnderTestClock) {
  static int ticks;
  ticks = 0;
  set_clock_for_testing([]() -> double { return 100.0 * ticks++; });
  const std::string expected_suffix = "\"ts\":0,\"dur\":100,\"clock\":\"wall\"";

  for (int run = 0; run < 2; ++run) {
    ticks = 0;
    recorder().clear();
    set_enabled(true);
    { const ScopedSpan span("test.op", "test"); }
    set_enabled(false);
    const auto spans = recorder().snapshot();
    ASSERT_EQ(spans.size(), 1u);
    std::ostringstream os;
    write_jsonl(os, {}, spans);
    EXPECT_NE(os.str().find(expected_suffix), std::string::npos) << os.str();
  }
  recorder().clear();
  set_clock_for_testing(nullptr);
}

TEST(ScopedSpanTest, DisabledSpanRecordsNothing) {
  recorder().clear();
  ASSERT_FALSE(enabled());
  {
    const ScopedSpan span("test.noop", "test", {{"k", "v"}});
    EXPECT_EQ(span.elapsed_seconds(), 0.0);
  }
  EXPECT_TRUE(recorder().snapshot().empty());
}

TEST(RecorderTest, SnapshotSortsByStartThenTidThenName) {
  recorder().clear();
  set_enabled(true);
  record_virtual_span("b", "sim", 1, 2.0, 1.0);
  record_virtual_span("a", "sim", 0, 1.0, 1.0);
  record_virtual_span("a", "sim", 1, 2.0, 1.0);
  set_enabled(false);
  const auto spans = recorder().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].tid, 0u);
  EXPECT_EQ(spans[1].name, "a");
  EXPECT_EQ(spans[1].tid, 1u);
  EXPECT_EQ(spans[2].name, "b");
  recorder().clear();
}

}  // namespace
}  // namespace flo::obs
