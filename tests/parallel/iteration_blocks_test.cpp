#include "parallel/iteration_blocks.hpp"

#include <gtest/gtest.h>

namespace flo::parallel {
namespace {

poly::IterationSpace space2d(std::int64_t n) {
  return poly::IterationSpace({{0, n - 1}, {0, n - 1}});
}

TEST(BlockDecompositionTest, OneBlockPerThreadByDefault) {
  BlockDecomposition d(space2d(64), 0, 4);
  ASSERT_EQ(d.block_count(), 4u);
  EXPECT_EQ(d.blocks()[0].lower, 0);
  EXPECT_EQ(d.blocks()[0].upper, 15);
  EXPECT_EQ(d.blocks()[3].lower, 48);
  EXPECT_EQ(d.blocks()[3].upper, 63);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(d.blocks()[b].thread, b);
  }
}

TEST(BlockDecompositionTest, RoundRobinAssignment) {
  BlockDecomposition d(space2d(64), 0, 2, /*block_count=*/4);
  ASSERT_EQ(d.block_count(), 4u);
  EXPECT_EQ(d.blocks()[0].thread, 0u);
  EXPECT_EQ(d.blocks()[1].thread, 1u);
  EXPECT_EQ(d.blocks()[2].thread, 0u);
  EXPECT_EQ(d.blocks()[3].thread, 1u);
}

TEST(BlockDecompositionTest, UnevenLastBlockSmaller) {
  // 10 iterations over 4 blocks: spans 3,3,3,1 (the paper's "last block may
  // have a smaller number of iterations").
  BlockDecomposition d(poly::IterationSpace({{0, 9}}), 0, 4);
  ASSERT_EQ(d.block_count(), 4u);
  EXPECT_EQ(d.blocks()[0].size(), 3);
  EXPECT_EQ(d.blocks()[3].size(), 1);
}

TEST(BlockDecompositionTest, MoreThreadsThanIterations) {
  BlockDecomposition d(poly::IterationSpace({{0, 2}}), 0, 8);
  EXPECT_EQ(d.block_count(), 3u);  // never more blocks than iterations
}

TEST(BlockDecompositionTest, BlockOfAndThreadOf) {
  BlockDecomposition d(space2d(64), 0, 4);
  EXPECT_EQ(d.block_of(0), 0u);
  EXPECT_EQ(d.block_of(15), 0u);
  EXPECT_EQ(d.block_of(16), 1u);
  EXPECT_EQ(d.thread_of(63), 3u);
  // Out-of-range values clamp.
  EXPECT_EQ(d.block_of(-5), 0u);
  EXPECT_EQ(d.block_of(1000), 3u);
}

TEST(BlockDecompositionTest, BlocksOfThread) {
  BlockDecomposition d(space2d(64), 0, 2, 6);
  const auto mine = d.blocks_of(0);
  ASSERT_EQ(mine.size(), 3u);
  for (const auto& block : mine) {
    EXPECT_EQ(block.thread, 0u);
  }
  // Blocks in execution order.
  EXPECT_LT(mine[0].lower, mine[1].lower);
}

TEST(BlockDecompositionTest, ParallelDimSelectsLoop) {
  BlockDecomposition d(space2d(8), 1, 4);
  EXPECT_EQ(d.parallel_dim(), 1u);
  EXPECT_EQ(d.block_count(), 4u);
  EXPECT_EQ(d.blocks()[0].size(), 2);
}

TEST(BlockDecompositionTest, Reassign) {
  BlockDecomposition d(space2d(64), 0, 4);
  d.reassign({3, 2, 1, 0});
  EXPECT_EQ(d.blocks()[0].thread, 3u);
  EXPECT_EQ(d.thread_of(0), 3u);
  EXPECT_THROW(d.reassign({0, 1}), std::invalid_argument);
  EXPECT_THROW(d.reassign({9, 9, 9, 9}), std::invalid_argument);
}

TEST(BlockDecompositionTest, InvalidArguments) {
  EXPECT_THROW(BlockDecomposition(space2d(8), 0, 0), std::invalid_argument);
  EXPECT_THROW(BlockDecomposition(space2d(8), 2, 4), std::invalid_argument);
}

TEST(BlockDecompositionTest, CoverageIsExact) {
  // Every iteration belongs to exactly one block; blocks are contiguous.
  BlockDecomposition d(poly::IterationSpace({{5, 77}}), 0, 7);
  std::int64_t expected = 5;
  for (const auto& block : d.blocks()) {
    EXPECT_EQ(block.lower, expected);
    expected = block.upper + 1;
  }
  EXPECT_EQ(expected, 78);
}

}  // namespace
}  // namespace flo::parallel
