#include "parallel/schedule.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace flo::parallel {
namespace {

ir::Program two_nest_program() {
  return ir::ProgramBuilder("p")
      .array("A", {64, 64})
      .nest("n1", {{0, 63}, {0, 63}}, 0)
      .read("A", {{1, 0}, {0, 1}})
      .done()
      .nest("n2", {{0, 63}, {0, 63}}, 1)
      .read("A", {{0, 1}, {1, 0}})
      .done()
      .build();
}

TEST(ParallelScheduleTest, OneDecompositionPerNest) {
  const ParallelSchedule s(two_nest_program(), 8);
  EXPECT_EQ(s.nest_count(), 2u);
  EXPECT_EQ(s.thread_count(), 8u);
  EXPECT_EQ(s.decomposition(0).parallel_dim(), 0u);
  EXPECT_EQ(s.decomposition(1).parallel_dim(), 1u);
  EXPECT_THROW(s.decomposition(2), std::out_of_range);
}

TEST(ParallelScheduleTest, DefaultMappingIsIdentity) {
  const ParallelSchedule s(two_nest_program(), 8);
  EXPECT_EQ(s.mapping().kind(), MappingKind::kIdentity);
  EXPECT_EQ(s.mapping().node_of(3), 3u);
}

TEST(ParallelScheduleTest, SetMappingReplacesPlacement) {
  ParallelSchedule s(two_nest_program(), 64);
  s.set_mapping(MappingKind::kPermutation2);
  EXPECT_EQ(s.mapping().kind(), MappingKind::kPermutation2);
  bool moved = false;
  for (ThreadId t = 0; t < 64; ++t) {
    if (s.mapping().node_of(t) != t) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(ParallelScheduleTest, ExplicitBlockCount) {
  const ParallelSchedule s(two_nest_program(), 4, MappingKind::kIdentity, 16);
  EXPECT_EQ(s.decomposition(0).block_count(), 16u);
  // Round-robin: 4 blocks per thread.
  EXPECT_EQ(s.decomposition(0).blocks_of(1).size(), 4u);
}

TEST(ParallelScheduleTest, MutableDecompositionForBaselines) {
  ParallelSchedule s(two_nest_program(), 4);
  s.decomposition(0).reassign({3, 2, 1, 0});
  EXPECT_EQ(s.decomposition(0).blocks()[0].thread, 3u);
}

}  // namespace
}  // namespace flo::parallel
