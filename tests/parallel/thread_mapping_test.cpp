#include "parallel/thread_mapping.hpp"

#include <gtest/gtest.h>

#include <set>

namespace flo::parallel {
namespace {

TEST(ThreadMappingTest, IdentityMapsThreadToSameNode) {
  ThreadMapping m(MappingKind::kIdentity, 64);
  for (ThreadId t = 0; t < 64; ++t) {
    EXPECT_EQ(m.node_of(t), t);
    EXPECT_EQ(m.thread_on(t), t);
  }
}

TEST(ThreadMappingTest, PermutationsAreBijections) {
  for (const auto kind : {MappingKind::kPermutation2, MappingKind::kPermutation3,
                          MappingKind::kPermutation4}) {
    ThreadMapping m(kind, 64);
    std::set<NodeId> nodes;
    for (ThreadId t = 0; t < 64; ++t) {
      nodes.insert(m.node_of(t));
      EXPECT_EQ(m.thread_on(m.node_of(t)), t);
    }
    EXPECT_EQ(nodes.size(), 64u);
  }
}

TEST(ThreadMappingTest, PermutationsAreDeterministic) {
  ThreadMapping a(MappingKind::kPermutation2, 64);
  ThreadMapping b(MappingKind::kPermutation2, 64);
  for (ThreadId t = 0; t < 64; ++t) {
    EXPECT_EQ(a.node_of(t), b.node_of(t));
  }
}

TEST(ThreadMappingTest, PermutationsDiffer) {
  ThreadMapping a(MappingKind::kPermutation2, 64);
  ThreadMapping b(MappingKind::kPermutation3, 64);
  bool differ = false;
  for (ThreadId t = 0; t < 64; ++t) {
    if (a.node_of(t) != b.node_of(t)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(ThreadMappingTest, NonIdentityActuallyPermutes) {
  ThreadMapping m(MappingKind::kPermutation2, 64);
  std::size_t moved = 0;
  for (ThreadId t = 0; t < 64; ++t) {
    if (m.node_of(t) != t) ++moved;
  }
  EXPECT_GT(moved, 32u);  // a random permutation moves almost everything
}

TEST(ThreadMappingTest, OutOfRangeChecked) {
  ThreadMapping m(MappingKind::kIdentity, 4);
  EXPECT_THROW(m.node_of(4), std::out_of_range);
  EXPECT_THROW(m.thread_on(4), std::out_of_range);
  EXPECT_THROW(ThreadMapping(MappingKind::kIdentity, 0),
               std::invalid_argument);
}

TEST(ThreadMappingTest, Names) {
  EXPECT_STREQ(mapping_name(MappingKind::kIdentity), "Mapping I");
  EXPECT_STREQ(mapping_name(MappingKind::kPermutation4), "Mapping IV");
}

}  // namespace
}  // namespace flo::parallel
