#include "polyhedral/data_space.hpp"

#include <gtest/gtest.h>

namespace flo::poly {
namespace {

TEST(DataSpaceTest, Basics) {
  DataSpace space({4, 8});
  EXPECT_EQ(space.dims(), 2u);
  EXPECT_EQ(space.extent(1), 8);
  EXPECT_EQ(space.element_count(), 32);
}

TEST(DataSpaceTest, NonPositiveExtentRejected) {
  EXPECT_THROW(DataSpace({4, 0}), std::invalid_argument);
  EXPECT_THROW(DataSpace({-1}), std::invalid_argument);
}

TEST(DataSpaceTest, Contains) {
  DataSpace space({4, 4});
  EXPECT_TRUE(space.contains(std::vector<std::int64_t>{0, 0}));
  EXPECT_TRUE(space.contains(std::vector<std::int64_t>{3, 3}));
  EXPECT_FALSE(space.contains(std::vector<std::int64_t>{4, 0}));
  EXPECT_FALSE(space.contains(std::vector<std::int64_t>{-1, 0}));
}

TEST(DataSpaceTest, RowMajorRoundTrip) {
  DataSpace space({3, 5, 7});
  for (std::int64_t offset = 0; offset < space.element_count(); ++offset) {
    const auto point = space.delinearize_row_major(offset);
    EXPECT_EQ(space.linearize_row_major(point), offset);
    EXPECT_TRUE(space.contains(point));
  }
}

TEST(DataSpaceTest, RowMajorLastDimensionFastest) {
  DataSpace space({2, 4});
  EXPECT_EQ(space.linearize_row_major(std::vector<std::int64_t>{0, 1}), 1);
  EXPECT_EQ(space.linearize_row_major(std::vector<std::int64_t>{1, 0}), 4);
}

TEST(DataSpaceTest, DelinearizeOutOfRange) {
  DataSpace space({2, 2});
  EXPECT_THROW(space.delinearize_row_major(4), std::out_of_range);
  EXPECT_THROW(space.delinearize_row_major(-1), std::out_of_range);
}

TEST(DataSpaceTest, ExtentIndexChecked) {
  DataSpace space({2});
  EXPECT_THROW(space.extent(1), std::out_of_range);
}

TEST(DataSpaceTest, ToString) {
  EXPECT_EQ(DataSpace({4, 8}).to_string(), "[4 x 8]");
}

}  // namespace
}  // namespace flo::poly
