#include "polyhedral/hyperplane.hpp"

#include <gtest/gtest.h>

namespace flo::poly {
namespace {

TEST(HyperplaneTest, UnitFamily) {
  const auto h = Hyperplane::unit(3, 1);
  EXPECT_EQ(h.normal(), (linalg::IntVector{0, 1, 0}));
  EXPECT_EQ(h.constant(), 0);
  EXPECT_TRUE(h.contains(std::vector<std::int64_t>{5, 0, -2}));
  EXPECT_FALSE(h.contains(std::vector<std::int64_t>{5, 1, -2}));
}

TEST(HyperplaneTest, UnitAxisChecked) {
  EXPECT_THROW(Hyperplane::unit(2, 2), std::invalid_argument);
}

TEST(HyperplaneTest, ZeroNormalRejected) {
  EXPECT_THROW(Hyperplane(linalg::IntVector{0, 0}, 3), std::invalid_argument);
}

TEST(HyperplaneTest, EvaluateSigned) {
  const Hyperplane h(linalg::IntVector{1, 2}, 4);
  EXPECT_EQ(h.evaluate(std::vector<std::int64_t>{0, 2}), 0);
  EXPECT_EQ(h.evaluate(std::vector<std::int64_t>{1, 2}), 1);
  EXPECT_EQ(h.evaluate(std::vector<std::int64_t>{0, 0}), -4);
}

TEST(HyperplaneTest, SameMemberIgnoresConstant) {
  const Hyperplane h(linalg::IntVector{1, 1}, 100);
  EXPECT_TRUE(h.same_member(std::vector<std::int64_t>{1, 2},
                            std::vector<std::int64_t>{0, 3}));
  EXPECT_FALSE(h.same_member(std::vector<std::int64_t>{1, 2},
                             std::vector<std::int64_t>{1, 3}));
}

TEST(HyperplaneTest, ToString) {
  const Hyperplane h(linalg::IntVector{2, 0, -1}, 5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("2*b1"), std::string::npos);
  EXPECT_NE(s.find("-b3"), std::string::npos);
  EXPECT_NE(s.find("= 5"), std::string::npos);
}

TEST(DirectionBasisTest, ColumnsSpanHyperplaneDirections) {
  // For e_u in 3 dims, the basis must span exactly the vectors with zero
  // u-th component.
  const linalg::IntMatrix basis = hyperplane_direction_basis(3, 1);
  EXPECT_EQ(basis.rows(), 3u);
  EXPECT_EQ(basis.cols(), 2u);
  // Each column is orthogonal to e_1 (axis index 1).
  for (std::size_t c = 0; c < basis.cols(); ++c) {
    EXPECT_EQ(basis.at(1, c), 0);
  }
  EXPECT_EQ(basis.rank(), 2u);
}

TEST(DirectionBasisTest, PaperUsage) {
  // Two iterations on one member hyperplane differ by a combination of
  // the basis columns: i1 - i2 = (a, 0, b).
  const linalg::IntMatrix basis = hyperplane_direction_basis(3, 1);
  const std::vector<std::int64_t> coeffs{3, -2};
  const linalg::IntVector diff = basis * coeffs;
  EXPECT_EQ(diff, (linalg::IntVector{3, 0, -2}));
}

TEST(DirectionBasisTest, InvalidArguments) {
  EXPECT_THROW(hyperplane_direction_basis(2, 2), std::invalid_argument);
  EXPECT_THROW(hyperplane_direction_basis(0, 0), std::invalid_argument);
}

TEST(DirectionBasisTest, OneDimensionalSpace) {
  const linalg::IntMatrix basis = hyperplane_direction_basis(1, 0);
  EXPECT_EQ(basis.rows(), 1u);
  EXPECT_EQ(basis.cols(), 0u);
}

}  // namespace
}  // namespace flo::poly
