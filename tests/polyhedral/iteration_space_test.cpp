#include "polyhedral/iteration_space.hpp"

#include <gtest/gtest.h>

namespace flo::poly {
namespace {

TEST(IterationSpaceTest, BasicProperties) {
  IterationSpace space({{0, 3}, {1, 2}});
  EXPECT_EQ(space.depth(), 2u);
  EXPECT_EQ(space.total_iterations(), 8);
  EXPECT_EQ(space.bound(0).trip_count(), 4);
  EXPECT_EQ(space.bound(1).trip_count(), 2);
}

TEST(IterationSpaceTest, EmptyBoundRejected) {
  EXPECT_THROW(IterationSpace({{2, 1}}), std::invalid_argument);
}

TEST(IterationSpaceTest, Contains) {
  IterationSpace space({{0, 3}, {0, 3}});
  EXPECT_TRUE(space.contains(std::vector<std::int64_t>{0, 0}));
  EXPECT_TRUE(space.contains(std::vector<std::int64_t>{3, 3}));
  EXPECT_FALSE(space.contains(std::vector<std::int64_t>{4, 0}));
  EXPECT_FALSE(space.contains(std::vector<std::int64_t>{0, -1}));
  EXPECT_FALSE(space.contains(std::vector<std::int64_t>{0}));  // wrong arity
}

TEST(IterationSpaceTest, LexicographicEnumeration) {
  IterationSpace space({{0, 1}, {0, 2}});
  auto iter = space.first();
  std::vector<std::vector<std::int64_t>> visited{iter};
  while (space.next(iter)) visited.push_back(iter);
  ASSERT_EQ(visited.size(), 6u);
  EXPECT_EQ(visited.front(), (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(visited[1], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(visited[3], (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(visited.back(), (std::vector<std::int64_t>{1, 2}));
}

TEST(IterationSpaceTest, EnumerationCountMatchesTotal) {
  IterationSpace space({{2, 4}, {0, 1}, {5, 7}});
  auto iter = space.first();
  std::int64_t count = 1;
  while (space.next(iter)) ++count;
  EXPECT_EQ(count, space.total_iterations());
}

TEST(IterationSpaceTest, NonZeroLowerBounds) {
  IterationSpace space({{10, 12}});
  auto iter = space.first();
  EXPECT_EQ(iter[0], 10);
  EXPECT_TRUE(space.next(iter));
  EXPECT_TRUE(space.next(iter));
  EXPECT_FALSE(space.next(iter));
  EXPECT_EQ(iter[0], 12);
}

TEST(IterationSpaceTest, BoundIndexChecked) {
  IterationSpace space({{0, 1}});
  EXPECT_THROW(space.bound(1), std::out_of_range);
}

TEST(IterationSpaceTest, ToStringMentionsBounds) {
  IterationSpace space({{0, 7}});
  EXPECT_NE(space.to_string().find("[0, 7]"), std::string::npos);
}

}  // namespace
}  // namespace flo::poly
