#include "polyhedral/reference.hpp"

#include <gtest/gtest.h>

namespace flo::poly {
namespace {

TEST(AffineReferenceTest, PaperSection3Example) {
  // W[i, j] from Fig. 3(b): 2x3 access matrix over (i1, i2) with a k loop.
  AffineReference ref(linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}},
                      linalg::IntVector{0, 0});
  const auto element = ref.evaluate(std::vector<std::int64_t>{3, 5, 9});
  EXPECT_EQ(element, (linalg::IntVector{3, 5}));
}

TEST(AffineReferenceTest, OffsetApplied) {
  AffineReference ref(linalg::IntMatrix{{1, 0}, {0, 1}},
                      linalg::IntVector{2, -1});
  const auto element = ref.evaluate(std::vector<std::int64_t>{4, 4});
  EXPECT_EQ(element, (linalg::IntVector{6, 3}));
}

TEST(AffineReferenceTest, OffsetLengthMismatch) {
  EXPECT_THROW(AffineReference(linalg::IntMatrix{{1, 0}},
                               linalg::IntVector{0, 0}),
               std::invalid_argument);
}

TEST(AffineReferenceTest, IdentityFactory) {
  const auto ref = AffineReference::identity(2, 3);
  EXPECT_EQ(ref.array_dims(), 2u);
  EXPECT_EQ(ref.nest_depth(), 3u);
  const auto element = ref.evaluate(std::vector<std::int64_t>{7, 8, 9});
  EXPECT_EQ(element, (linalg::IntVector{7, 8}));
  EXPECT_THROW(AffineReference::identity(3, 2), std::invalid_argument);
}

TEST(AffineReferenceTest, FromDimMap) {
  const std::vector<std::size_t> map{2, 0};
  const auto ref = AffineReference::from_dim_map(map, 3);
  const auto element = ref.evaluate(std::vector<std::int64_t>{7, 8, 9});
  EXPECT_EQ(element, (linalg::IntVector{9, 7}));
}

TEST(AffineReferenceTest, FromDimMapWithNone) {
  const std::vector<std::size_t> map{AffineReference::kNone, 1};
  const auto ref = AffineReference::from_dim_map(map, 2);
  const auto element = ref.evaluate(std::vector<std::int64_t>{7, 8});
  EXPECT_EQ(element, (linalg::IntVector{0, 8}));
}

TEST(AffineReferenceTest, TransformedByUnimodular) {
  AffineReference ref(linalg::IntMatrix{{0, 1}, {1, 0}},
                      linalg::IntVector{1, 2});
  const linalg::IntMatrix d{{0, 1}, {1, 0}};  // swap data dims
  const auto t = ref.transformed(d);
  // D * Q == identity; D * q == (2, 1).
  EXPECT_EQ(t.access_matrix(), (linalg::IntMatrix{{1, 0}, {0, 1}}));
  EXPECT_EQ(t.offset(), (linalg::IntVector{2, 1}));
  // Transforming commutes with evaluation.
  const std::vector<std::int64_t> iter{3, 4};
  const auto direct = d * ref.evaluate(iter);
  EXPECT_EQ(t.evaluate(iter), direct);
}

TEST(AffineReferenceTest, StaysWithinDetectsOutOfBounds) {
  IterationSpace iters({{0, 9}, {0, 9}});
  DataSpace ok({10, 10});
  DataSpace small({10, 5});
  const auto ref = AffineReference::identity(2, 2);
  EXPECT_TRUE(ref.stays_within(iters, ok));
  EXPECT_FALSE(ref.stays_within(iters, small));
}

TEST(AffineReferenceTest, StaysWithinHandlesOffsets) {
  IterationSpace iters({{0, 8}});
  const AffineReference shifted(linalg::IntMatrix{{1}},
                                linalg::IntVector{1});
  EXPECT_FALSE(shifted.stays_within(iters, DataSpace({9})));
  EXPECT_TRUE(shifted.stays_within(iters, DataSpace({10})));
  const AffineReference negative(linalg::IntMatrix{{1}},
                                 linalg::IntVector{-1});
  EXPECT_FALSE(negative.stays_within(iters, DataSpace({9})));
}

TEST(AffineReferenceTest, StaysWithinNegativeCoefficient) {
  // a = 9 - i stays within [0, 10) for i in [0, 9].
  IterationSpace iters({{0, 9}});
  const AffineReference rev(linalg::IntMatrix{{-1}}, linalg::IntVector{9});
  EXPECT_TRUE(rev.stays_within(iters, DataSpace({10})));
}

TEST(AffineReferenceTest, ToStringReadable) {
  AffineReference ref(linalg::IntMatrix{{0, 1}, {2, 0}},
                      linalg::IntVector{0, 3});
  const std::string s = ref.to_string();
  EXPECT_NE(s.find("i2"), std::string::npos);
  EXPECT_NE(s.find("2*i1"), std::string::npos);
  EXPECT_NE(s.find("+3"), std::string::npos);
}

}  // namespace
}  // namespace flo::poly
