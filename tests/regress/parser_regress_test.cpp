// Shrunk fuzzer repros, landed as named regressions. Each case was found
// by flo_fuzz's parse-total mutation oracle against the pre-hardening
// parser: the inputs parsed "successfully" into programs that wrapped,
// overflowed, or leaked non-ParseError exceptions downstream. The parser
// must reject every one of them with a ParseError diagnostic.
#include <gtest/gtest.h>

#include <stdexcept>

#include "ir/parser.hpp"

namespace flo::ir {
namespace {

// Expects `text` to be rejected with a ParseError (never another
// exception type, never acceptance).
void expect_parse_error(const std::string& text) {
  try {
    (void)parse_program(text);
    FAIL() << "parser accepted:\n" << text;
  } catch (const ParseError&) {
    // expected
  } catch (const std::exception& err) {
    FAIL() << "parser leaked " << err.what() << " for:\n" << text;
  }
}

// repro: oracle 'parse-total' (case seed 8042142155559163816)
// LoopNest's ctor threw std::invalid_argument through parse_program;
// phase_repeat is a uint32, so a negative repeat would wrap to ~2^32.
TEST(ParserRegress, NegativeRepeatIsParseError) {
  expect_parse_error(
      "program fuzz\n"
      "array B 10\n"
      "nest n0 parallel=1 repeat=-9223372036854775808 {\n"
      "  for i1 = 2..4\n"
      "  write B[2*i1]\n"
      "}\n");
}

TEST(ParserRegress, ZeroRepeatIsParseError) {
  expect_parse_error(
      "program fuzz\n"
      "array A 8\n"
      "nest n parallel=1 repeat=0 {\n"
      "  for i1 = 0..7\n"
      "  read A[i1]\n"
      "}\n");
}

// A loop whose trip count (upper - lower + 1) overflows int64 reached
// LoopBound::trip_count(), which computes it unchecked: signed-overflow
// UB under UBSan, a negative trip in release builds.
TEST(ParserRegress, TripCountOverflowIsParseError) {
  expect_parse_error(
      "program fuzz\n"
      "array A 8\n"
      "nest n parallel=1 {\n"
      "  for i1 = -9223372036854775808..9223372036854775806\n"
      "  read A[0]\n"
      "}\n");
}

// Extents whose byte-size product overflows escaped as
// std::overflow_error from checked_mul instead of a diagnostic.
TEST(ParserRegress, ArrayByteSizeOverflowIsParseError) {
  expect_parse_error(
      "program fuzz\n"
      "array A 3037000500 3037000500\n"
      "nest n parallel=1 {\n"
      "  for i1 = 0..7\n"
      "  read A[i1, 0]\n"
      "}\n");
}

// Repeated huge coefficients on one iterator overflowed the checked
// accumulation inside parse_index_expr, leaking std::overflow_error.
TEST(ParserRegress, CoefficientOverflowIsParseError) {
  expect_parse_error(
      "program fuzz\n"
      "array A 8\n"
      "nest n parallel=1 {\n"
      "  for i1 = 0..7\n"
      "  read A[9223372036854775807*i1+9223372036854775807*i1]\n"
      "}\n");
}

// Huge-but-individually-valid bounds made validate()'s corner evaluation
// overflow (checked_mul inside AffineReference::stays_within).
TEST(ParserRegress, CornerEvaluationOverflowIsParseError) {
  expect_parse_error(
      "program fuzz\n"
      "array A 8\n"
      "nest n parallel=1 {\n"
      "  for i1 = 0..4611686018427387903\n"
      "  read A[4*i1]\n"
      "}\n");
}

}  // namespace
}  // namespace flo::ir
