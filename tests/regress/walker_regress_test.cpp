// Shrunk fuzzer repro for the streaming walker's run merging: a stride-0
// innermost dimension folds its whole remaining trip count into one
// event, and with an inner trip above 2^32 the old uint32 accumulation
// silently wrapped (caught by flo_fuzz's count-conservation oracle when
// the uint64 fix is reverted; case seed 5292580334274787743 shrank to
// this program). The closed-form element count makes the check O(events),
// not O(elements), so the 7-billion-iteration nest stays cheap to test.
#include <gtest/gtest.h>

#include <cstdint>

#include "ir/parser.hpp"
#include "layout/canonical.hpp"
#include "parallel/schedule.hpp"
#include "storage/topology.hpp"
#include "trace/source.hpp"

namespace flo {
namespace {

TEST(WalkerRegress, StrideZeroRunAbove32BitsConservesElementCount) {
  const ir::Program program = ir::parse_program(
      "program fuzz_huge\n"
      "array A 1\n"
      "nest huge parallel=1 {\n"
      "  for i1 = 0..0\n"
      "  for i2 = 0..7228053090\n"
      "  read A[0]\n"
      "}\n");
  constexpr std::uint64_t kExpected = 7228053091ull;  // > 2^32

  storage::TopologyConfig config;
  config.compute_nodes = 1;
  config.io_nodes = 1;
  config.storage_nodes = 1;
  const storage::StorageTopology topology(config);
  const parallel::ParallelSchedule schedule(program, 1);
  const layout::LayoutMap layouts = layout::default_layouts(program);

  for (const bool extents : {false, true}) {
    trace::TraceOptions options;
    options.emit_extents = extents;
    const trace::StreamingTraceSource source(program, schedule, layouts,
                                             topology, options);
    const auto cursor = source.open(0, 0);
    storage::AccessEvent ev;
    std::uint64_t total = 0;
    while (cursor->next(ev)) {
      total += ev.element_count * ev.run_blocks;
    }
    EXPECT_EQ(total, kExpected)
        << "element count wrapped (extents=" << extents << ")";
  }
}

}  // namespace
}  // namespace flo
