// Admission control: BoundedQueue semantics and the decide() ordering
// (quota before queue bounds), plus the EWMA service estimate feeding
// retry-after hints.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "service/admission.hpp"

namespace flo::service {
namespace {

TEST(BoundedQueueTest, PushPopFifoWithinCapacity) {
  BoundedQueue<int> queue(3);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  EXPECT_FALSE(queue.try_push(4)) << "full queue must shed, not grow";
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_TRUE(queue.try_push(4));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::optional<int>(4));
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(7));
  queue.close();
  EXPECT_FALSE(queue.try_push(8)) << "closed queue rejects new work";
  EXPECT_EQ(queue.pop(), std::optional<int>(7)) << "in-queue work still runs";
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(1);
  std::vector<std::thread> consumers;
  std::atomic<int> woke{0};
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      EXPECT_EQ(queue.pop(), std::nullopt);
      woke.fetch_add(1);
    });
  }
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(AdmissionTest, QuotaIsCheckedBeforeQueueBounds) {
  AdmissionConfig config;
  config.quota = {/*rate=*/1.0, /*burst=*/1.0};
  config.queue_depth = 4;
  AdmissionController admission(config);
  EXPECT_EQ(admission.decide("t", 0.0, /*queue_depth=*/0).decision,
            Decision::kAdmit);
  // Tenant drained AND queue full: the throttle verdict must win so a
  // noisy tenant's shed responses carry its quota hint, and the tenant
  // never consumes shared-queue judgment.
  const AdmissionResult result = admission.decide("t", 0.0, /*queue_depth=*/4);
  EXPECT_EQ(result.decision, Decision::kThrottled);
  EXPECT_GT(result.retry_after_ms, 0.0);
}

TEST(AdmissionTest, FullQueueShedsWithRetryHint) {
  AdmissionConfig config;
  config.queue_depth = 2;
  config.service_estimate_ms = 100;
  AdmissionController admission(config);
  EXPECT_EQ(admission.decide("t", 0.0, 1).decision, Decision::kAdmit);
  const AdmissionResult result = admission.decide("t", 0.0, 2);
  EXPECT_EQ(result.decision, Decision::kQueueFull);
  EXPECT_GT(result.retry_after_ms, 0.0);
}

TEST(AdmissionTest, QueueRetryHintScalesWithWorkers) {
  AdmissionConfig config;
  config.queue_depth = 8;
  config.service_estimate_ms = 100;
  AdmissionController admission(config);
  const double one_worker = admission.queue_retry_after_ms(1);
  const double four_workers = admission.queue_retry_after_ms(4);
  EXPECT_NEAR(one_worker, 800.0, 1e-9);
  EXPECT_NEAR(four_workers, 200.0, 1e-9);
}

TEST(AdmissionTest, ServiceEstimateIsAnEwma) {
  AdmissionConfig config;
  config.service_estimate_ms = 100;
  AdmissionController admission(config);
  admission.observe_service_ms(200);
  // alpha 0.2: 0.8 * 100 + 0.2 * 200 = 120.
  EXPECT_NEAR(admission.service_estimate_ms(), 120.0, 1e-9);
  admission.observe_service_ms(120);
  EXPECT_NEAR(admission.service_estimate_ms(), 120.0, 1e-9);
}

}  // namespace
}  // namespace flo::service
