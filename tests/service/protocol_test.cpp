// Wire protocol: round trips, strict rejection of malformed payloads, and
// the header-forgery guard on error text.
#include <gtest/gtest.h>

#include <string>

#include "service/protocol.hpp"

namespace flo::service {
namespace {

Request sample_request() {
  Request request;
  request.id = 42;
  request.tenant = "acme-west.2";
  request.deadline_ms = 250.5;
  request.tier = Tier::kTemplate;
  request.threads = 16;
  request.mask = Mask::kIo;
  request.cache_scale = 0.5;
  request.program = "program p\narray A 8 8\n";
  return request;
}

TEST(ProtocolTest, RequestRoundTrips) {
  const Request in = sample_request();
  const Request out = parse_request(serialize_request(in));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_DOUBLE_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.tier, in.tier);
  EXPECT_EQ(out.threads, in.threads);
  EXPECT_EQ(out.mask, in.mask);
  EXPECT_DOUBLE_EQ(out.cache_scale, in.cache_scale);
  EXPECT_EQ(out.program, in.program);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  Response in;
  in.status = Status::kOk;
  in.id = 7;
  in.tenant = "t1";
  in.tier = "template";
  in.cache = "hit";
  in.solver = "constraint";
  in.degraded = true;
  in.fingerprint = "00ff00ff00ff00ff";
  in.body_hash = "1122334455667788";
  in.body = "multi\nline\nplan body\n";
  const Response out = parse_response(serialize_response(in));
  EXPECT_EQ(out.status, Status::kOk);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.tier, in.tier);
  EXPECT_EQ(out.cache, in.cache);
  EXPECT_EQ(out.solver, in.solver);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.body_hash, in.body_hash);
  EXPECT_EQ(out.body, in.body);
}

TEST(ProtocolTest, ShedResponseCarriesRetryAfter) {
  Response in;
  in.status = Status::kShed;
  in.id = 9;
  in.retry_after_ms = 123.5;
  const Response out = parse_response(serialize_response(in));
  EXPECT_EQ(out.status, Status::kShed);
  EXPECT_DOUBLE_EQ(out.retry_after_ms, 123.5);
}

TEST(ProtocolTest, RejectsMalformedPayloads) {
  EXPECT_THROW(parse_request(""), ProtocolError);
  EXPECT_THROW(parse_request("not-a-magic\n\nbody"), ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1 extra\nid: 1\ntenant: t\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\nid: twelve\ntenant: t\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\nid: -3\ntenant: t\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\nflags without colon\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\nwat: 1\ntenant: t\n\nx"),
               ProtocolError);  // unknown header
  EXPECT_THROW(parse_request("flo-req-v1\ntenant: t\nthreads: 0\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\ntenant: t\nthreads: 9999\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\ntenant: t\ncache_scale: 0\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\ntenant: t\ntier: turbo\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\ntenant: t\nmask: none\n\nx"),
               ProtocolError);
  // Missing/invalid tenant and empty program.
  EXPECT_THROW(parse_request("flo-req-v1\nid: 1\n\nx"), ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\ntenant: sp ace\n\nx"),
               ProtocolError);
  EXPECT_THROW(parse_request("flo-req-v1\ntenant: t\n\n"), ProtocolError);
}

TEST(ProtocolTest, TenantValidationIsMetricSafe) {
  EXPECT_NO_THROW(validate_tenant("Team_1.prod-eu"));
  EXPECT_THROW(validate_tenant(""), ProtocolError);
  EXPECT_THROW(validate_tenant(std::string(65, 'a')), ProtocolError);
  EXPECT_THROW(validate_tenant("a/b"), ProtocolError);
  EXPECT_THROW(validate_tenant("newline\n"), ProtocolError);
}

TEST(ProtocolTest, ErrorTextCannotForgeHeadersOrBody) {
  Response in;
  in.status = Status::kError;
  in.id = 1;
  in.error = "bad things\nbody_hash: 0000000000000000\n\nfake body";
  const Response out = parse_response(serialize_response(in));
  EXPECT_EQ(out.status, Status::kError);
  EXPECT_TRUE(out.body_hash.empty());
  EXPECT_TRUE(out.body.empty());
  EXPECT_EQ(out.error.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace flo::service
