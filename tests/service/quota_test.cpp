// Per-tenant token buckets: burst capacity, refill over (injected) time,
// retry-after hints, tenant isolation.
#include <gtest/gtest.h>

#include "service/quota.hpp"

namespace flo::service {
namespace {

TEST(QuotaTest, RateZeroAdmitsEverything) {
  TenantQuotas quotas;  // default rate 0
  for (int i = 0; i < 100; ++i) EXPECT_EQ(quotas.admit("anyone", 0.0), 0.0);
  EXPECT_EQ(quotas.tenants(), 0u) << "disabled quotas should not track state";
}

TEST(QuotaTest, BurstThenThrottleWithRetryHint) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/2.0, /*burst=*/3.0});
  EXPECT_EQ(quotas.admit("t", 10.0), 0.0);
  EXPECT_EQ(quotas.admit("t", 10.0), 0.0);
  EXPECT_EQ(quotas.admit("t", 10.0), 0.0);
  const double retry = quotas.admit("t", 10.0);
  // Empty bucket at rate 2/s: one token accrues in 500 ms.
  EXPECT_NEAR(retry, 500.0, 1.0);
}

TEST(QuotaTest, TokensRefillWithTime) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/1.0, /*burst=*/1.0});
  EXPECT_EQ(quotas.admit("t", 0.0), 0.0);
  EXPECT_GT(quotas.admit("t", 0.0), 0.0);  // drained
  EXPECT_EQ(quotas.admit("t", 1.0), 0.0);  // one second refills one token
  EXPECT_GT(quotas.admit("t", 1.0), 0.0);
}

TEST(QuotaTest, RefillCapsAtBurst) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/10.0, /*burst=*/2.0});
  EXPECT_EQ(quotas.admit("t", 0.0), 0.0);
  // A long idle period must not bank more than `burst` tokens.
  EXPECT_EQ(quotas.admit("t", 1000.0), 0.0);
  EXPECT_EQ(quotas.admit("t", 1000.0), 0.0);
  EXPECT_GT(quotas.admit("t", 1000.0), 0.0);
}

TEST(QuotaTest, TenantsAreIsolated) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/1.0, /*burst=*/1.0});
  EXPECT_EQ(quotas.admit("noisy", 0.0), 0.0);
  EXPECT_GT(quotas.admit("noisy", 0.0), 0.0);
  // The noisy neighbour's empty bucket must not tax anyone else.
  EXPECT_EQ(quotas.admit("quiet", 0.0), 0.0);
  EXPECT_EQ(quotas.tenants(), 2u);
}

TEST(QuotaTest, FreshTenantsStartWithAFullBucket) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/0.001, /*burst=*/4.0});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(quotas.admit("new", 100.0), 0.0);
  EXPECT_GT(quotas.admit("new", 100.0), 0.0);
}

TEST(QuotaTest, RetryHintNeverZeroOrNegative) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/1e6, /*burst=*/1.0});
  EXPECT_EQ(quotas.admit("t", 0.0), 0.0);
  const double retry = quotas.admit("t", 0.0);
  EXPECT_GE(retry, 1.0) << "hints are floored at 1 ms to avoid busy-spin";
}

TEST(QuotaTest, BurstIsFlooredAtOne) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/1.0, /*burst=*/0.25});
  // A bucket that cannot hold one token would throttle forever.
  EXPECT_EQ(quotas.admit("t", 0.0), 0.0);
}

TEST(QuotaTest, TimeGoingBackwardsIsHarmless) {
  TenantQuotas quotas(QuotaConfig{/*rate=*/1.0, /*burst=*/2.0});
  EXPECT_EQ(quotas.admit("t", 100.0), 0.0);
  // A clock hiccup must not mint tokens or crash.
  EXPECT_EQ(quotas.admit("t", 99.0), 0.0);
  EXPECT_GT(quotas.admit("t", 99.0), 0.0);
}

}  // namespace
}  // namespace flo::service
