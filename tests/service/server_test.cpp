// Server core under a fake clock: compile/caching semantics, per-tenant
// throttling, the degradation ladder, deadline sheds, journal-backed
// restart recovery, and a real framed round trip over a socketpair.
#include <gtest/gtest.h>
#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace flo::service {
namespace {

const char* kProgram =
    "program p\n"
    "array A 64 64\n"
    "array B 64 64\n"
    "nest t parallel=1 {\n"
    "  for i1 = 0..63\n"
    "  for i2 = 0..63\n"
    "  read  A[i1, i2]\n"
    "  write B[i2, i1]\n"
    "}\n";

Request valid_request(std::uint64_t id, const std::string& tenant = "t") {
  Request request;
  request.id = id;
  request.tenant = tenant;
  request.program = kProgram;
  return request;
}

Response ask(Server& server, const Request& request) {
  return parse_response(server.handle_payload(serialize_request(request)));
}

std::string temp_journal(const char* name) {
  return testing::TempDir() + "/" + name + "." + std::to_string(::getpid()) +
         ".journal";
}

TEST(ServerTest, CompilesThenServesFromCache) {
  ServerConfig config;
  config.workers = 1;
  double now = 0;
  config.clock = [&now] { return now; };
  Server server(std::move(config));

  const Response first = ask(server, valid_request(1));
  ASSERT_EQ(first.status, Status::kOk) << first.error;
  EXPECT_EQ(first.tier, "exact");
  EXPECT_EQ(first.cache, "miss");
  // Without FLO_SOLVER the daemon compiles with the reference backend and
  // says so in the response metadata.
  EXPECT_EQ(first.solver, "unimodular");
  EXPECT_FALSE(first.degraded);
  EXPECT_FALSE(first.body.empty());
  EXPECT_FALSE(first.fingerprint.empty());
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(first.tenant, "t");

  const Response second = ask(server, valid_request(2));
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_EQ(second.cache, "hit");
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_EQ(second.body, first.body);
}

TEST(ServerTest, ThrottlesNoisyTenantsButNotNeighbours) {
  ServerConfig config;
  config.workers = 1;
  config.tenant_rate = 1;
  config.tenant_burst = 2;
  double now = 0;
  config.clock = [&now] { return now; };
  Server server(std::move(config));

  EXPECT_EQ(ask(server, valid_request(1, "noisy")).status, Status::kOk);
  EXPECT_EQ(ask(server, valid_request(2, "noisy")).status, Status::kOk);
  const Response throttled = ask(server, valid_request(3, "noisy"));
  EXPECT_EQ(throttled.status, Status::kThrottled);
  EXPECT_GT(throttled.retry_after_ms, 0.0);
  EXPECT_EQ(throttled.id, 3u);
  EXPECT_EQ(throttled.tenant, "noisy");

  // Per-tenant isolation: the quiet tenant still gets in.
  EXPECT_EQ(ask(server, valid_request(4, "quiet")).status, Status::kOk);

  // And the noisy tenant recovers once its bucket refills.
  now += 1.0;
  EXPECT_EQ(ask(server, valid_request(5, "noisy")).status, Status::kOk);
}

TEST(ServerTest, TightDeadlineDegradesToTemplateTier) {
  ServerConfig config;
  config.workers = 1;
  double now = 0;
  config.clock = [&now] { return now; };
  Server server(std::move(config));

  Request request = valid_request(1);
  // Remaining deadline (30 ms) under twice the 50 ms service estimate:
  // the ladder must pick the template tier and say so.
  request.deadline_ms = 30;
  const Response degraded = ask(server, request);
  ASSERT_EQ(degraded.status, Status::kOk) << degraded.error;
  EXPECT_EQ(degraded.tier, "template");
  EXPECT_TRUE(degraded.degraded);

  // A request that explicitly asks for the template tier is not
  // "degraded" — it got exactly what it ordered.
  Request wanted = valid_request(2);
  wanted.tier = Tier::kTemplate;
  const Response templated = ask(server, wanted);
  ASSERT_EQ(templated.status, Status::kOk);
  EXPECT_EQ(templated.tier, "template");
  EXPECT_FALSE(templated.degraded);
  EXPECT_EQ(templated.fingerprint, degraded.fingerprint);
  EXPECT_EQ(templated.cache, "hit");
}

TEST(ServerTest, ExactTierNeverDegrades) {
  ServerConfig config;
  config.workers = 1;
  double now = 0;
  config.clock = [&now] { return now; };
  Server server(std::move(config));

  Request request = valid_request(1);
  request.tier = Tier::kExact;
  request.deadline_ms = 1;  // tight, but the client forbade degradation
  const Response response = ask(server, request);
  ASSERT_EQ(response.status, Status::kOk) << response.error;
  EXPECT_EQ(response.tier, "exact");
  EXPECT_FALSE(response.degraded);
}

TEST(ServerTest, TemplateFamilyMembersShareOneCompile) {
  ServerConfig config;
  config.workers = 1;
  double now = 0;
  config.clock = [&now] { return now; };
  Server server(std::move(config));

  Request member1 = valid_request(1);
  member1.tier = Tier::kTemplate;
  member1.cache_scale = 1.0;
  Request member2 = valid_request(2);
  member2.tier = Tier::kTemplate;
  member2.cache_scale = 2.0;  // same family, scaled capacities

  const Response first = ask(server, member1);
  ASSERT_EQ(first.status, Status::kOk) << first.error;
  EXPECT_EQ(first.cache, "miss");
  const Response second = ask(server, member2);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_EQ(second.cache, "hit") << "family member missed the shared compile";
  EXPECT_EQ(second.fingerprint, first.fingerprint);

  // An exact-tier request for a scaled member is its own key.
  Request exact = valid_request(3);
  exact.tier = Tier::kExact;
  exact.cache_scale = 2.0;
  const Response third = ask(server, exact);
  ASSERT_EQ(third.status, Status::kOk);
  EXPECT_NE(third.fingerprint, first.fingerprint);
}

TEST(ServerTest, ExpiredDeadlineIsShedBeforeCompiling) {
  ServerConfig config;
  config.workers = 1;
  // Every clock() call advances 20 ms: by the time the worker looks at a
  // 5 ms deadline, it is long gone.
  double now = 0;
  config.clock = [&now] {
    now += 0.020;
    return now;
  };
  Server server(std::move(config));

  Request request = valid_request(1);
  request.deadline_ms = 5;
  const Response response = ask(server, request);
  EXPECT_EQ(response.status, Status::kShed);
  EXPECT_GT(response.retry_after_ms, 0.0);
  EXPECT_EQ(response.id, 1u);
}

TEST(ServerTest, MalformedPayloadsGetTypedErrors) {
  ServerConfig config;
  config.workers = 1;
  Server server(std::move(config));

  const Response garbage = parse_response(server.handle_payload("not a req"));
  EXPECT_EQ(garbage.status, Status::kError);
  EXPECT_FALSE(garbage.error.empty());

  const Response bad_program = parse_response(server.handle_payload(
      "flo-req-v1\nid: 1\ntenant: t\n\nnest without a program\n"));
  EXPECT_EQ(bad_program.status, Status::kError);
  EXPECT_NE(bad_program.error.find("program"), std::string::npos);
  EXPECT_EQ(bad_program.id, 1u);
}

TEST(ServerTest, RestartReplaysTheCacheJournal) {
  const std::string journal = temp_journal("server_restart");
  std::remove(journal.c_str());

  std::string fingerprint;
  std::string body;
  {
    ServerConfig config;
    config.workers = 1;
    config.cache_journal = journal;
    Server server(std::move(config));
    const Response first = ask(server, valid_request(1));
    ASSERT_EQ(first.status, Status::kOk) << first.error;
    fingerprint = first.fingerprint;
    body = first.body;
  }

  ServerConfig config;
  config.workers = 1;
  config.cache_journal = journal;
  Server restarted(std::move(config));
  EXPECT_GE(restarted.journal_replayed(), 1u);
  const Response replay = ask(restarted, valid_request(2));
  ASSERT_EQ(replay.status, Status::kOk);
  EXPECT_EQ(replay.cache, "hit") << "journal replay did not restore the entry";
  EXPECT_EQ(replay.fingerprint, fingerprint);
  EXPECT_EQ(replay.body, body);
  std::remove(journal.c_str());
}

TEST(ServerTest, ServesFramedRequestsOverASocketpair) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::signal(SIGPIPE, SIG_IGN);

  ServerConfig config;
  config.workers = 2;
  Server server(std::move(config));
  std::thread serving([&] { server.serve_fd(fds[1], fds[1]); });

  Client client;
  client.adopt(fds[0]);
  const auto first = client.call(valid_request(1), /*timeout_ms=*/30000);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->status, Status::kOk) << first->error;
  EXPECT_EQ(first->cache, "miss");
  const auto second = client.call(valid_request(2), 30000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->cache, "hit");

  client.close();   // EOF ends serve_fd
  serving.join();
  ::close(fds[1]);
  server.stop();
}

}  // namespace
}  // namespace flo::service
