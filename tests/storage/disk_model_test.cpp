#include "storage/disk_model.hpp"

#include "storage/network_model.hpp"

#include <gtest/gtest.h>

namespace flo::storage {
namespace {

DiskModel default_model() { return DiskModel{}; }

TEST(DiskArrayTest, SequentialAccessIsTransferLimited) {
  DiskArray disks(1, default_model(), 2048);
  const double scattered = disks.service(0, 5000);  // long seek from LBA 0
  const double next = disks.service(0, 5001);
  // Adjacent block streams with no seek or rotation.
  EXPECT_LT(next, scattered);
  EXPECT_NEAR(next, 2048.0 / default_model().bandwidth, 1e-9);
}

TEST(DiskArrayTest, SameBlockCostsTransferOnly) {
  DiskArray disks(1, default_model(), 2048);
  disks.service(0, 100);
  const double again = disks.service(0, 100);
  EXPECT_NEAR(again, 2048.0 / default_model().bandwidth, 1e-9);
}

TEST(DiskArrayTest, LongerSeeksCostMore) {
  DiskArray disks(1, default_model(), 2048);
  disks.service(0, 0);
  const double small = disks.peek_service(0, 100);
  const double large = disks.peek_service(0, 1ull << 21);
  EXPECT_GT(large, small);
  // Both scattered accesses include the rotational delay (3 ms at 10k RPM).
  EXPECT_GT(small, 0.5 * 60.0 / 10000.0);
}

TEST(DiskArrayTest, SeekBoundedByMaxSeek) {
  const DiskModel m = default_model();
  DiskArray disks(1, m, 2048);
  disks.service(0, 0);
  const double worst = disks.peek_service(0, m.capacity_blocks * 10);
  const double rotation = 0.5 * 60.0 / m.rpm;
  EXPECT_LE(worst, m.max_seek + rotation + 2048.0 / m.bandwidth + 1e-9);
}

TEST(DiskArrayTest, PeekDoesNotMoveHead) {
  DiskArray disks(1, default_model(), 2048);
  disks.service(0, 0);
  const double a = disks.peek_service(0, 500);
  const double b = disks.peek_service(0, 500);
  EXPECT_EQ(a, b);
  // service() does move it: after reading 500 the same block is cheap.
  disks.service(0, 500);
  EXPECT_LT(disks.peek_service(0, 501), a);
}

TEST(DiskArrayTest, IndependentHeadsPerDisk) {
  DiskArray disks(2, default_model(), 2048);
  disks.service(0, 1000);
  // Disk 1's head is still at 0.
  EXPECT_GT(disks.peek_service(1, 1000), disks.peek_service(0, 1000));
}

TEST(DiskArrayTest, CountsReads) {
  DiskArray disks(1, default_model(), 2048);
  disks.service(0, 1);
  disks.service(0, 2);
  EXPECT_EQ(disks.total_reads(), 2u);
  disks.reset();
  EXPECT_EQ(disks.total_reads(), 0u);
}

TEST(DiskArrayTest, InvalidParametersRejected) {
  EXPECT_THROW(DiskArray(0, default_model(), 2048), std::invalid_argument);
  DiskModel bad = default_model();
  bad.rpm = 0;
  EXPECT_THROW(DiskArray(1, bad, 2048), std::invalid_argument);
  bad = default_model();
  bad.bandwidth = 0;
  EXPECT_THROW(DiskArray(1, bad, 2048), std::invalid_argument);
}

TEST(DiskArrayTest, ServiceRunMatchesPerBlockSum) {
  DiskArray run_disks(2, default_model(), 2048);
  DiskArray loop_disks(2, default_model(), 2048);
  // A scattered position first, then a sequential extent: the extent pays
  // the seek once and streams the rest, exactly as per-block calls would.
  run_disks.service(0, 5000);
  loop_disks.service(0, 5000);
  const double bulk = run_disks.service_run(0, 123, 8);
  double sum = loop_disks.service(0, 123);
  for (std::uint64_t lba = 124; lba < 131; ++lba) {
    sum += loop_disks.service(0, lba);
  }
  EXPECT_EQ(bulk, sum);  // bitwise: same adds in the same order
  EXPECT_EQ(run_disks.total_reads(), loop_disks.total_reads());
  // Heads end at the same place: the next read costs the same.
  EXPECT_EQ(run_disks.peek_service(0, 500), loop_disks.peek_service(0, 500));
}

TEST(DiskArrayTest, ServiceRunStreamsAfterPositioning) {
  DiskArray disks(1, default_model(), 2048);
  disks.service(0, 9000);
  const double extent = disks.service_run(0, 100, 4);
  DiskArray ref(1, default_model(), 2048);
  ref.service(0, 9000);
  const double first = ref.service(0, 100);
  // Blocks after the first stream at pure transfer time.
  const double transfer = 2048.0 / default_model().bandwidth;
  EXPECT_NEAR(extent, first + 3 * transfer, 1e-12);
  EXPECT_EQ(disks.service_run(0, 104, 0), 0.0);
}

TEST(NetworkModelTest, RunCostsAccumulatePerBlock) {
  LatencyModel lat;
  const NetworkModel net(lat, 2048, 1.0e9);
  double compute = 0;
  double storage = 0;
  for (int i = 0; i < 5; ++i) {
    compute += net.compute_io_hop();
    storage += net.io_storage_hop();
  }
  EXPECT_EQ(net.compute_io_run(5), compute);
  EXPECT_EQ(net.io_storage_run(5), storage);
  EXPECT_EQ(net.compute_io_run(0), 0.0);
}

TEST(NetworkModelTest, HopCostsIncludeWireTime) {
  LatencyModel lat;
  const NetworkModel net(lat, 2048, 1.0e9);
  EXPECT_NEAR(net.compute_io_hop(), lat.net_compute_io + 2048.0 / 1.0e9,
              1e-12);
  EXPECT_NEAR(net.io_storage_hop(), lat.net_io_storage + 2048.0 / 1.0e9,
              1e-12);
  EXPECT_NEAR(net.demotion(), lat.demotion_cost + 2048.0 / 1.0e9, 1e-12);
}

TEST(NetworkModelTest, BadBandwidthRejected) {
  EXPECT_THROW(NetworkModel(LatencyModel{}, 2048, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace flo::storage
