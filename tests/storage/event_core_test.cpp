// Event core (FLO_SIM=event): EventQueue mechanics, the contention
// semantics the clock core cannot express (concurrent misses, queue
// waits, readahead occupying the disk), and the event≡clock equivalence
// envelope (DESIGN.md §4g) that the fuzz oracle pins at scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "storage/event_queue.hpp"
#include "storage/simulator.hpp"

namespace flo::storage {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.push(3.0, EventKind::kDiskDone, 3);
  q.push(1.0, EventKind::kThreadIssue, 1);
  q.push(2.0, EventKind::kIoArrive, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  // Equal timestamps break ties by insertion order — the determinism the
  // engine's thread-id scheduling relies on.
  EventQueue q;
  for (std::uint32_t t = 0; t < 8; ++t) {
    q.push(1.5, EventKind::kThreadIssue, t);
  }
  for (std::uint32_t t = 0; t < 8; ++t) {
    EXPECT_EQ(q.pop().a, t);
  }
}

TEST(EventQueueTest, RejectsTimeTravel) {
  EventQueue q;
  q.push(2.0, EventKind::kThreadIssue, 0);
  (void)q.pop();
  EXPECT_THROW(q.push(1.0, EventKind::kThreadIssue, 0), std::logic_error);
  // Pushing exactly at the popped time is legal (zero-latency hops).
  EXPECT_NO_THROW(q.push(2.0, EventKind::kIoArrive, 0));
}

TEST(EventQueueTest, TracksMaxPendingAndClears) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.push(static_cast<double>(i),
                                     EventKind::kThreadIssue, 0);
  (void)q.pop();
  (void)q.pop();
  q.push(10.0, EventKind::kDiskDone, 0);
  EXPECT_EQ(q.max_pending(), 5u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // clear() also resets the monotonic floor: early times are legal again.
  EXPECT_NO_THROW(q.push(0.0, EventKind::kThreadIssue, 0));
}

TEST(SimCoreTest, ParsesAndNamesCores) {
  EXPECT_EQ(parse_sim_core("clock"), SimCoreKind::kClock);
  EXPECT_EQ(parse_sim_core("event"), SimCoreKind::kEvent);
  EXPECT_FALSE(parse_sim_core("EVENT").has_value());
  EXPECT_FALSE(parse_sim_core("").has_value());
  EXPECT_STREQ(sim_core_name(SimCoreKind::kClock), "clock");
  EXPECT_STREQ(sim_core_name(SimCoreKind::kEvent), "event");
}

// ---------------------------------------------------------------------------
// Event-core semantics on shared components.

TopologyConfig tiny_config(std::size_t io_blocks = 4,
                           std::size_t storage_blocks = 8) {
  TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = io_blocks * c.block_size;
  c.storage_cache_bytes = storage_blocks * c.block_size;
  return c;
}

std::vector<NodeId> identity_io_mapping(const StorageTopology& topo) {
  std::vector<NodeId> out(topo.config().compute_nodes);
  for (NodeId c = 0; c < out.size(); ++c) out[c] = topo.io_node_of(c);
  return out;
}

HierarchySimulator event_sim(const StorageTopology& topo,
                             PolicyKind policy = PolicyKind::kLruInclusive,
                             std::vector<RangeHint> hints = {}) {
  HierarchySimulator sim(topo, policy, identity_io_mapping(topo),
                         std::move(hints));
  sim.set_core(SimCoreKind::kEvent);
  return sim;
}

TEST(SimCoreTest, SetCoreOverridesDefault) {
  const StorageTopology topo(tiny_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  sim.set_core(SimCoreKind::kEvent);
  EXPECT_EQ(sim.core(), SimCoreKind::kEvent);
  sim.set_core(SimCoreKind::kClock);
  EXPECT_EQ(sim.core(), SimCoreKind::kClock);
}

TEST(EventCoreTest, ConcurrentMissesBothReachDisk) {
  // The clock-core counterpart (SimulatorTest.SharedIoCacheAcrossThreads)
  // sees one miss and one hit because it services requests atomically.
  // The event core keeps both requests concurrently in flight: neither
  // fill has landed when the second lookup runs, so both go to disk and
  // the second queues behind the first at the single spindle.
  const StorageTopology topo(tiny_config());
  auto sim = event_sim(topo);
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(2);
  phase.per_thread[0].push_back({0, 7, 1});
  phase.per_thread[1].push_back({0, 7, 1});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.io.lookups, 2u);
  EXPECT_EQ(result.io.hits, 0u);
  EXPECT_EQ(result.disk_reads, 2u);
  EXPECT_GE(result.queue.disk.waits, 1u);
  EXPECT_GT(result.queue.disk.wait_time, 0.0);
  EXPECT_GE(result.queue.disk.max_depth, 1u);
  EXPECT_TRUE(result.queue.any());
}

TEST(EventCoreTest, UncontendedRunReportsZeroQueueStats) {
  const StorageTopology topo(tiny_config());
  auto sim = event_sim(topo);
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  for (std::uint64_t b = 0; b < 6; ++b) phase.per_thread[0].push_back({0, b, 1});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_FALSE(result.queue.any());
}

TEST(EventCoreTest, DeterministicUnderContention) {
  const StorageTopology topo(tiny_config(2, 4));
  TraceProgram trace;
  trace.file_blocks = {128};
  PhaseTrace phase;
  phase.repeat = 2;
  phase.per_thread.resize(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (std::uint64_t i = 0; i < 12; ++i) {
      phase.per_thread[t].push_back({0, (i * 29 + t * 7) % 128, 1 + t});
    }
  }
  trace.phases.push_back(std::move(phase));
  auto a = event_sim(topo);
  auto b = event_sim(topo);
  EXPECT_EQ(a.run(trace), b.run(trace));  // bitwise, queue stats included
}

TEST(EventCoreTest, ReadaheadChargesDiskNotRequester) {
  // Asynchronous readahead is free for the thread that triggered it, but
  // the staging transfer occupies the spindle: with a second thread
  // hammering the same disk, the contender pays queueing delay and the
  // stream still gets its storage hits.
  TopologyConfig c = tiny_config(4, 16);
  c.prefetch_depth = 4;
  const StorageTopology topo(c);
  TraceProgram trace;
  trace.file_blocks = {96, 512};
  PhaseTrace phase;
  phase.per_thread.resize(3);
  for (std::uint64_t b = 0; b < 48; ++b) {
    phase.per_thread[0].push_back({0, b, 1});
    phase.per_thread[2].push_back({1, (b * 97) % 512, 1});
  }
  trace.phases.push_back(std::move(phase));
  const auto result = event_sim(topo).run(trace);
  EXPECT_GT(result.prefetches, 0u);
  EXPECT_GT(result.storage.hits, 0u);
  EXPECT_GT(result.queue.disk.waits, 0u);
}

// ---------------------------------------------------------------------------
// The event≡clock equivalence envelope: one thread, prefetch off, faults
// off. Integer counters must agree bitwise; exec/thread times only up to
// FP re-association across the staged sums.

void expect_envelope_equal(const SimulationResult& event,
                           const SimulationResult& clock) {
  EXPECT_EQ(event.io, clock.io);
  EXPECT_EQ(event.storage, clock.storage);
  EXPECT_EQ(event.disk_reads, clock.disk_reads);
  EXPECT_EQ(event.demotions, clock.demotions);
  EXPECT_EQ(event.prefetches, clock.prefetches);
  EXPECT_EQ(event.disk_writes, clock.disk_writes);
  EXPECT_EQ(event.writebacks, clock.writebacks);
  EXPECT_EQ(event.accesses, clock.accesses);
  EXPECT_EQ(event.elements, clock.elements);
  EXPECT_EQ(event.faults, clock.faults);
  EXPECT_FALSE(event.queue.any());  // nothing ever queues with one thread
  const auto near = [](double a, double b) {
    return std::abs(a - b) <=
           1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  EXPECT_TRUE(near(event.exec_time, clock.exec_time))
      << event.exec_time << " vs " << clock.exec_time;
  ASSERT_EQ(event.thread_time.size(), clock.thread_time.size());
  for (std::size_t t = 0; t < event.thread_time.size(); ++t) {
    EXPECT_TRUE(near(event.thread_time[t], clock.thread_time[t]))
        << "thread " << t << ": " << event.thread_time[t] << " vs "
        << clock.thread_time[t];
  }
}

TraceProgram envelope_trace() {
  TraceProgram trace;
  trace.file_blocks = {96, 48};
  PhaseTrace phase;
  phase.repeat = 2;
  phase.per_thread.resize(1);
  AccessEvent ev;
  for (const auto& [file, block, run] :
       {std::tuple<FileId, std::uint64_t, std::uint32_t>{0, 0, 24},
        {0, 70, 1},
        {1, 8, 17},
        {0, 3, 24},
        {1, 40, 5}}) {
    ev.file = file;
    ev.block = block;
    ev.run_blocks = run;
    ev.element_count = 3;
    phase.per_thread[0].push_back(ev);
  }
  trace.phases.push_back(std::move(phase));
  return trace;
}

void expect_cores_agree(const TopologyConfig& config, PolicyKind policy,
                        const TraceProgram& trace,
                        std::vector<RangeHint> hints = {}) {
  const StorageTopology topo(config);
  HierarchySimulator clock(topo, policy, identity_io_mapping(topo), hints);
  clock.set_core(SimCoreKind::kClock);
  HierarchySimulator event(topo, policy, identity_io_mapping(topo), hints);
  event.set_core(SimCoreKind::kEvent);
  expect_envelope_equal(event.run(trace), clock.run(trace));
}

TEST(EventClockEnvelopeTest, CachedPolicies) {
  const TopologyConfig c = tiny_config(4, 8);
  expect_cores_agree(c, PolicyKind::kLruInclusive, envelope_trace());
  expect_cores_agree(c, PolicyKind::kDemoteLru, envelope_trace());
  expect_cores_agree(c, PolicyKind::kMqInclusive, envelope_trace());
}

TEST(EventClockEnvelopeTest, KarmaHints) {
  std::vector<RangeHint> hints = {{0, 0, 32, 10.0},
                                  {0, 32, 96, 2.0},
                                  {1, 0, 48, 0.1}};
  expect_cores_agree(tiny_config(4, 8), PolicyKind::kKarma, envelope_trace(),
                     hints);
}

TEST(EventClockEnvelopeTest, ModeledWrites) {
  TopologyConfig c = tiny_config(4, 8);
  c.model_writes = true;
  TraceProgram trace = envelope_trace();
  for (auto& ev : trace.phases[0].per_thread[0]) ev.is_write = true;
  expect_cores_agree(c, PolicyKind::kLruInclusive, trace);
  expect_cores_agree(c, PolicyKind::kDemoteLru, trace);
}

TEST(EventClockEnvelopeTest, AnalyticCachelessPath) {
  // No caches + single stream drives the event core's closed-form phase
  // path; integer stats (and settled head positions, via the second rep)
  // must still match the clock core exactly.
  TopologyConfig c = tiny_config();
  c.io_cache_enabled = false;
  c.storage_cache_enabled = false;
  c.storage_nodes = 2;  // striping splits runs across spindles
  expect_cores_agree(c, PolicyKind::kLruInclusive, envelope_trace());
}

TEST(EventClockEnvelopeTest, IoCacheDisabledStorageOnly) {
  TopologyConfig c = tiny_config();
  c.io_cache_enabled = false;
  expect_cores_agree(c, PolicyKind::kLruInclusive, envelope_trace());
}

// ---------------------------------------------------------------------------
// Queue stats flow into the wire codec and the obs registry.

TEST(WireCodecTest, QueueStatsRoundTrip) {
  const StorageTopology topo(tiny_config());
  auto sim = event_sim(topo);
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(2);
  phase.per_thread[0].push_back({0, 7, 1});
  phase.per_thread[1].push_back({0, 7, 1});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  ASSERT_TRUE(result.queue.any());
  const auto decoded = from_wire(to_wire(result));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, result);  // bitwise, queue stats included
}

TEST(WireCodecTest, V1LinesParseWithZeroQueueStats) {
  // Pre-event journals carry no queue fields; they must keep parsing (as
  // the all-zero queue stats the clock core that wrote them produced).
  SimulationResult result;
  result.io.lookups = 5;
  result.io.hits = 3;
  result.exec_time = 1.25;
  result.thread_time = {1.25};
  result.disk_reads = 2;
  std::string v5 = to_wire(result);
  ASSERT_EQ(v5.rfind("sim-v5", 0), 0u);
  // With no tenants a v5 body is a v4 body. Strip the trailing tenant
  // count, the 2 bound tokens and the 9 queue tokens (3 layers x
  // waits/wait_time/depth), rewrite the tag: the exact v1 encoding.
  std::string v1 = "sim-v1" + v5.substr(6);
  for (int i = 0; i < 12; ++i) v1.erase(v1.find_last_of(' '));
  const auto decoded = from_wire(v1);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, result);
  EXPECT_FALSE(decoded->queue.any());
}

TEST(WireCodecTest, V2LinesParseWithZeroBounds) {
  // Pre-bound journals (sim-v2) keep parsing; the bound fields come back
  // zero — "no claim", exactly what the runners that wrote them computed.
  SimulationResult result;
  result.io.lookups = 5;
  result.io.hits = 3;
  result.io_bound_bytes = 4096;
  result.storage_bound_bytes = 2048;
  std::string v5 = to_wire(result);
  ASSERT_EQ(v5.rfind("sim-v5", 0), 0u);
  // Strip the tenant count and both bound tokens.
  std::string v2 = "sim-v2" + v5.substr(6);
  for (int i = 0; i < 3; ++i) v2.erase(v2.find_last_of(' '));
  const auto decoded = from_wire(v2);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->io_bound_bytes, 0u);
  EXPECT_EQ(decoded->storage_bound_bytes, 0u);
  result.io_bound_bytes = 0;
  result.storage_bound_bytes = 0;
  EXPECT_EQ(*decoded, result);
}

TEST(QueueMetricsTest, PublishedOnlyWhenContended) {
  obs::set_enabled(true);
  obs::registry().reset();

  // Clock-core result: no queue stats, so no sim.queue.* keys appear.
  SimulationResult quiet;
  quiet.io.lookups = 4;
  publish_to_registry(quiet);
  for (const auto& sample : obs::registry().snapshot()) {
    EXPECT_EQ(sample.name.rfind("sim.queue.", 0), std::string::npos)
        << sample.name;
  }

  SimulationResult contended;
  contended.queue.disk.waits = 3;
  contended.queue.disk.wait_time = 0.5;
  contended.queue.disk.max_depth = 2;
  publish_to_registry(contended);
  publish_to_registry(contended);  // sums must accumulate across runs
  bool saw_waits = false, saw_wait_seconds = false, saw_depth = false;
  for (const auto& sample : obs::registry().snapshot()) {
    if (sample.name == "sim.queue.disk.waits") {
      saw_waits = true;
      EXPECT_EQ(sample.value, 6.0);
    } else if (sample.name == "sim.queue.disk.wait_seconds") {
      saw_wait_seconds = true;
      EXPECT_EQ(sample.count, 2u);
      EXPECT_DOUBLE_EQ(sample.sum, 1.0);
    } else if (sample.name == "sim.queue.disk.depth") {
      saw_depth = true;
      EXPECT_DOUBLE_EQ(sample.max, 2.0);
    }
    // The uncontended layers stay absent even on the contended publish.
    EXPECT_EQ(sample.name.rfind("sim.queue.io.", 0), std::string::npos)
        << sample.name;
  }
  EXPECT_TRUE(saw_waits);
  EXPECT_TRUE(saw_wait_seconds);
  EXPECT_TRUE(saw_depth);

  obs::registry().reset();
  obs::set_enabled(false);
}

TEST(QueueMetricsTest, EventCoreQueueDepthGaugesRegistered) {
  obs::set_enabled(true);
  obs::registry().reset();

  const StorageTopology topo(tiny_config());
  auto sim = event_sim(topo);
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(2);
  phase.per_thread[0].push_back({0, 7, 1});
  phase.per_thread[1].push_back({0, 7, 1});
  trace.phases.push_back(std::move(phase));
  (void)sim.run(trace);

  bool saw_disk_gauge = false;
  for (const auto& sample : obs::registry().snapshot()) {
    if (sample.name == "sim.event.queue_depth.disk") {
      saw_disk_gauge = true;
      EXPECT_EQ(sample.kind, obs::MetricKind::kGauge);
    }
  }
  EXPECT_TRUE(saw_disk_gauge);

  obs::registry().reset();
  obs::set_enabled(false);
}

}  // namespace
}  // namespace flo::storage
