// Extent/per-block equivalence suite: an AccessEvent with run_blocks == m
// is DEFINED as the m per-block events {file, block + i, element_count,
// is_write}. The simulator's extent fast path must therefore produce a
// SimulationResult bit-identical (operator== is strict, doubles included)
// to servicing the expanded stream through the per-block reference path —
// across policies, cache configurations, writes, prefetch, striping, and
// fault injection.
#include <gtest/gtest.h>

#include <vector>

#include "storage/simulator.hpp"
#include "util/rng.hpp"

namespace flo::storage {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 2;  // striping splits runs across nodes
  c.block_size = 2048;
  c.io_cache_bytes = 6 * c.block_size;
  c.storage_cache_bytes = 10 * c.block_size;
  return c;
}

std::vector<NodeId> identity_io_mapping(const StorageTopology& topo) {
  std::vector<NodeId> out(topo.config().compute_nodes);
  for (NodeId c = 0; c < out.size(); ++c) out[c] = topo.io_node_of(c);
  return out;
}

/// Expands every extent into its defining per-block events.
TraceProgram expand(const TraceProgram& trace) {
  TraceProgram out;
  out.file_blocks = trace.file_blocks;
  for (const auto& phase : trace.phases) {
    PhaseTrace expanded;
    expanded.repeat = phase.repeat;
    expanded.per_thread.resize(phase.per_thread.size());
    for (std::size_t t = 0; t < phase.per_thread.size(); ++t) {
      for (const AccessEvent& ev : phase.per_thread[t]) {
        AccessEvent block = ev;
        block.run_blocks = 1;
        for (std::uint32_t i = 0; i < ev.run_blocks; ++i) {
          expanded.per_thread[t].push_back(block);
          ++block.block;
        }
      }
    }
    out.phases.push_back(std::move(expanded));
  }
  return out;
}

/// Random multi-thread trace mixing long sequential runs, short runs and
/// singles, with re-reads so caches actually hit.
TraceProgram random_trace(util::Rng& rng, std::size_t threads,
                          bool with_writes) {
  TraceProgram trace;
  trace.file_blocks = {96, 48};
  PhaseTrace phase;
  phase.repeat = 1 + static_cast<std::uint32_t>(rng.next_below(2));
  phase.per_thread.resize(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t events = 12 + rng.next_below(8);
    for (std::size_t i = 0; i < events; ++i) {
      AccessEvent ev;
      ev.file = static_cast<FileId>(rng.next_below(trace.file_blocks.size()));
      const std::uint64_t size = trace.file_blocks[ev.file];
      const std::uint32_t max_run =
          1 + static_cast<std::uint32_t>(rng.next_below(12));
      ev.block = rng.next_below(size - max_run);
      ev.run_blocks = max_run;
      ev.element_count = 1 + rng.next_below(4);
      ev.is_write = with_writes && rng.next_below(3) == 0;
      phase.per_thread[t].push_back(ev);
    }
  }
  trace.phases.push_back(std::move(phase));
  return trace;
}

/// The core property: batched-extent, split-extent, and expanded-per-block
/// simulations of the same logical stream agree exactly.
void expect_equivalent(const TopologyConfig& config, PolicyKind policy,
                       const TraceProgram& trace,
                       std::vector<RangeHint> hints = {}) {
  const StorageTopology topo(config);
  const TraceProgram per_block = expand(trace);

  // This suite is the clock core's extent-path contract: results must be
  // bit-identical, doubles included. The event core's staging (and its
  // analytic fast path's one-multiplication tail) legitimately re-associate
  // the FP sums, so every simulator here is pinned to the clock core; the
  // event-vs-clock envelope is checked separately (event_core_test.cpp and
  // the event-vs-clock fuzz oracle).
  HierarchySimulator reference(topo, policy, identity_io_mapping(topo), hints);
  reference.set_core(SimCoreKind::kClock);
  reference.set_extent_batching(false);
  const SimulationResult expected = reference.run(per_block);

  HierarchySimulator batched(topo, policy, identity_io_mapping(topo), hints);
  batched.set_core(SimCoreKind::kClock);
  batched.set_extent_batching(true);
  EXPECT_EQ(batched.run(trace), expected)
      << "extent batching diverged (policy " << static_cast<int>(policy)
      << ")";

  // Extent events with batching off exercise the scheduler's per-block
  // splitting alone.
  HierarchySimulator split(topo, policy, identity_io_mapping(topo), hints);
  split.set_core(SimCoreKind::kClock);
  split.set_extent_batching(false);
  EXPECT_EQ(split.run(trace), expected)
      << "extent splitting diverged (policy " << static_cast<int>(policy)
      << ")";
}

const PolicyKind kPolicies[] = {PolicyKind::kLruInclusive,
                                PolicyKind::kDemoteLru,
                                PolicyKind::kMqInclusive, PolicyKind::kKarma};

std::vector<RangeHint> karma_hints(const TraceProgram& trace) {
  std::vector<RangeHint> hints;
  for (FileId f = 0; f < trace.file_blocks.size(); ++f) {
    const std::uint64_t n = trace.file_blocks[f];
    hints.push_back({f, 0, n / 3, 8.0});
    hints.push_back({f, n / 3, 2 * n / 3, 2.0});
    hints.push_back({f, 2 * n / 3, n, 0.1});
  }
  return hints;
}

TEST(ExtentEquivalenceTest, AllPoliciesDefaultConfig) {
  for (const PolicyKind policy : kPolicies) {
    util::Rng rng(7001 + static_cast<std::uint64_t>(policy));
    for (int round = 0; round < 4; ++round) {
      const auto trace = random_trace(rng, 4, /*with_writes=*/false);
      expect_equivalent(small_config(), policy, trace,
                        policy == PolicyKind::kKarma
                            ? karma_hints(trace)
                            : std::vector<RangeHint>{});
    }
  }
}

TEST(ExtentEquivalenceTest, ModeledWrites) {
  TopologyConfig c = small_config();
  c.model_writes = true;
  for (const PolicyKind policy :
       {PolicyKind::kLruInclusive, PolicyKind::kDemoteLru}) {
    util::Rng rng(7101 + static_cast<std::uint64_t>(policy));
    for (int round = 0; round < 4; ++round) {
      expect_equivalent(c, policy, random_trace(rng, 4, /*with_writes=*/true));
    }
  }
}

TEST(ExtentEquivalenceTest, PrefetchEnabled) {
  TopologyConfig c = small_config();
  c.prefetch_depth = 2;
  util::Rng rng(7202);
  for (int round = 0; round < 4; ++round) {
    expect_equivalent(c, PolicyKind::kLruInclusive,
                      random_trace(rng, 4, false));
  }
}

TEST(ExtentEquivalenceTest, IoCacheDisabled) {
  TopologyConfig c = small_config();
  c.io_cache_enabled = false;
  util::Rng rng(7303);
  for (int round = 0; round < 4; ++round) {
    expect_equivalent(c, PolicyKind::kLruInclusive,
                      random_trace(rng, 4, false));
  }
}

TEST(ExtentEquivalenceTest, AllCachesDisabledStreamsFromDisk) {
  TopologyConfig c = small_config();
  c.io_cache_enabled = false;
  c.storage_cache_enabled = false;
  util::Rng rng(7404);
  for (int round = 0; round < 4; ++round) {
    expect_equivalent(c, PolicyKind::kLruInclusive,
                      random_trace(rng, 4, false));
  }
}

TEST(ExtentEquivalenceTest, CachelessSteadyStateSettlesDiskHeads) {
  // Single thread + no caches drives the bulk path's steady-state loop
  // (constant per-block transfer, heads settled per disk afterwards). The
  // scattered re-reads that follow each long run only cost the same as the
  // reference if every head landed exactly where per-block servicing would
  // have left it.
  TopologyConfig c = small_config();
  c.io_cache_enabled = false;
  c.storage_cache_enabled = false;
  TraceProgram trace;
  trace.file_blocks = {96, 48};
  PhaseTrace phase;
  phase.repeat = 2;
  phase.per_thread.resize(1);
  for (const auto& [file, block, run] :
       {std::tuple<FileId, std::uint64_t, std::uint32_t>{0, 0, 24},
        {0, 70, 1},   // scattered single: pays seeks set up by the run
        {1, 8, 17},   // odd-length run on the second file
        {0, 3, 24},   // re-scan overlapping the first run
        {1, 40, 5}}) {
    AccessEvent ev;
    ev.file = file;
    ev.block = block;
    ev.run_blocks = run;
    ev.element_count = 3;
    phase.per_thread[0].push_back(ev);
  }
  trace.phases.push_back(std::move(phase));
  expect_equivalent(c, PolicyKind::kLruInclusive, trace);
}

TEST(ExtentEquivalenceTest, FaultInjectionForcesReferencePath) {
  TopologyConfig c = small_config();
  c.fault.enabled = true;
  c.fault.seed = 99;
  c.fault.storage_transient_rate = 0.05;
  c.fault.disk_transient_rate = 0.05;
  c.fault.slow_disk_rate = 0.1;
  c.fault.outages.push_back({FaultLayer::kIo, 0, 0.0, 0.5});
  util::Rng rng(7505);
  for (int round = 0; round < 3; ++round) {
    expect_equivalent(c, PolicyKind::kLruInclusive,
                      random_trace(rng, 4, false));
  }
}

TEST(ExtentEquivalenceTest, SingleThreadLongResidentRuns) {
  // Re-reading the same long run back to back drives the bulk I/O-hit
  // path through full-length resident runs (warm after the first pass).
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  for (int pass = 0; pass < 3; ++pass) {
    AccessEvent ev;
    ev.block = 0;
    ev.run_blocks = 5;  // fits the 6-block I/O cache
    ev.element_count = 2;
    phase.per_thread[0].push_back(ev);
  }
  trace.phases.push_back(std::move(phase));
  expect_equivalent(small_config(), PolicyKind::kLruInclusive, trace);
}

TEST(ExtentEquivalenceTest, TwoThreadsInterleaveMidRun) {
  // Identical clocks force the scheduler's id tiebreak and make threads
  // yield to each other mid-extent: the budget cut must split the runs
  // exactly where per-block scheduling would.
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(2);
  for (std::uint32_t t = 0; t < 2; ++t) {
    AccessEvent warm;
    warm.block = t * 6;
    warm.run_blocks = 6;
    phase.per_thread[t].push_back(warm);
    AccessEvent reread = warm;
    phase.per_thread[t].push_back(reread);
  }
  trace.phases.push_back(std::move(phase));
  expect_equivalent(small_config(), PolicyKind::kLruInclusive, trace);
}

TEST(ExtentEquivalenceTest, RunBlocksZeroDegradesToSingleBlock) {
  TraceProgram zero;
  zero.file_blocks = {16};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  AccessEvent ev;
  ev.block = 3;
  ev.run_blocks = 0;  // invalid by contract; must behave as one block
  phase.per_thread[0].push_back(ev);
  zero.phases.push_back(std::move(phase));

  TraceProgram one = zero;
  one.phases[0].per_thread[0][0].run_blocks = 1;

  const StorageTopology topo(small_config());
  HierarchySimulator a(topo, PolicyKind::kLruInclusive,
                       identity_io_mapping(topo));
  HierarchySimulator b(topo, PolicyKind::kLruInclusive,
                       identity_io_mapping(topo));
  EXPECT_EQ(a.run(zero), b.run(one));
}

}  // namespace
}  // namespace flo::storage
