#include "storage/fault_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "storage/simulator.hpp"
#include "storage/stats.hpp"

namespace flo::storage {
namespace {

TopologyConfig tiny_config(std::size_t io_blocks = 4,
                           std::size_t storage_blocks = 8) {
  TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = io_blocks * c.block_size;
  c.storage_cache_bytes = storage_blocks * c.block_size;
  return c;
}

std::vector<NodeId> identity_io_mapping(const StorageTopology& topo) {
  std::vector<NodeId> out(topo.config().compute_nodes);
  for (NodeId c = 0; c < out.size(); ++c) out[c] = topo.io_node_of(c);
  return out;
}

TraceProgram single_thread_trace(std::vector<std::uint64_t> blocks,
                                 std::uint64_t file_blocks = 64) {
  TraceProgram trace;
  trace.file_blocks = {file_blocks};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  for (std::uint64_t b : blocks) phase.per_thread[0].push_back({0, b, 1});
  trace.phases.push_back(std::move(phase));
  return trace;
}

TEST(FaultSpecTest, ParsesFullSpec) {
  const FaultConfig c = parse_fault_spec(
      "seed=7,transient=0.05,retries=3,backoff=2e-3,slow=0.1,slow-mult=4,"
      "outage=io:1:0.5:1.5,outage=storage:0:2:3");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_DOUBLE_EQ(c.storage_transient_rate, 0.05);
  EXPECT_DOUBLE_EQ(c.disk_transient_rate, 0.05);
  EXPECT_EQ(c.max_retries, 3u);
  EXPECT_DOUBLE_EQ(c.retry_backoff, 2e-3);
  EXPECT_DOUBLE_EQ(c.slow_disk_rate, 0.1);
  EXPECT_DOUBLE_EQ(c.slow_disk_multiplier, 4.0);
  ASSERT_EQ(c.outages.size(), 2u);
  EXPECT_EQ(c.outages[0].layer, FaultLayer::kIo);
  EXPECT_EQ(c.outages[0].node, 1u);
  EXPECT_EQ(c.outages[1].layer, FaultLayer::kStorage);
  EXPECT_DOUBLE_EQ(c.outages[1].start, 2.0);
}

TEST(FaultSpecTest, SeparateLayerRatesOverrideTransient) {
  const FaultConfig c =
      parse_fault_spec("transient=0.1,disk-transient=0.2,storage-transient=0");
  EXPECT_DOUBLE_EQ(c.disk_transient_rate, 0.2);
  EXPECT_DOUBLE_EQ(c.storage_transient_rate, 0.0);
}

TEST(FaultSpecTest, EmptySpecIsDisabled) {
  EXPECT_FALSE(parse_fault_spec("").enabled);
}

TEST(FaultSpecTest, MalformedSpecsThrow) {
  EXPECT_THROW(parse_fault_spec("transient=lots"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("nonsense=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("outage=disk:0:0:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("outage=io:0:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("transient"), std::invalid_argument);
}

TEST(FaultConfigTest, ValidateRejectsOutOfRangeKnobs) {
  FaultConfig c;
  c.enabled = true;
  c.storage_transient_rate = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = FaultConfig{};
  c.slow_disk_multiplier = 0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = FaultConfig{};
  c.retry_backoff = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = FaultConfig{};
  c.outages.push_back({FaultLayer::kIo, 0, 2.0, 1.0});
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(FaultConfigTest, TopologyRejectsOutOfRangeOutageNode) {
  TopologyConfig c = tiny_config();
  c.fault.enabled = true;
  c.fault.outages.push_back({FaultLayer::kStorage, 5, 0.0, 1.0});
  EXPECT_THROW(StorageTopology{c}, std::invalid_argument);
}

TEST(FaultPlanTest, DecisionStreamIsSeededAndReplayable) {
  FaultConfig config;
  config.enabled = true;
  config.disk_transient_rate = 0.5;
  FaultPlan a(config);
  FaultPlan b(config);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(a.disk_read_fails());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(b.disk_read_fails(), first[i]);
  a.reset();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.disk_read_fails(), first[i]);
  // A rate of 0.5 over 64 draws fires at least once either way.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultPlanTest, CategoriesDrawIndependently) {
  FaultConfig config;
  config.enabled = true;
  config.disk_transient_rate = 0.5;
  config.storage_transient_rate = 0.5;
  FaultPlan interleaved(config);
  FaultPlan disk_only(config);
  // Interleaving storage draws must not shift the disk stream.
  std::vector<bool> a, b;
  for (int i = 0; i < 32; ++i) {
    interleaved.storage_read_fails();
    a.push_back(interleaved.disk_read_fails());
    b.push_back(disk_only.disk_read_fails());
  }
  EXPECT_EQ(a, b);
}

TEST(FaultPlanTest, BackoffDoublesAndSaturates) {
  FaultConfig config;
  config.retry_backoff = 1e-3;
  FaultPlan plan(config);
  EXPECT_DOUBLE_EQ(plan.backoff(0), 1e-3);
  EXPECT_DOUBLE_EQ(plan.backoff(1), 2e-3);
  EXPECT_DOUBLE_EQ(plan.backoff(3), 8e-3);
  // Huge attempt numbers must not overflow the shift.
  EXPECT_GT(plan.backoff(200), 0);
}

// Acceptance: a disabled (or zero-rate) fault config leaves simulation
// results bitwise identical to the pre-fault baseline.
TEST(FaultSimulationTest, DisabledFaultsAreByteIdentical) {
  const auto trace = single_thread_trace({1, 2, 3, 1, 2, 3, 9, 1});
  const StorageTopology baseline(tiny_config());

  TopologyConfig disabled_cfg = tiny_config();
  disabled_cfg.fault.seed = 7;  // differing knobs, master switch off
  disabled_cfg.fault.storage_transient_rate = 1.0;
  disabled_cfg.fault.enabled = false;

  TopologyConfig zero_cfg = tiny_config();
  zero_cfg.fault.enabled = true;  // enabled but nothing can fire

  for (const auto policy :
       {PolicyKind::kLruInclusive, PolicyKind::kDemoteLru, PolicyKind::kKarma,
        PolicyKind::kMqInclusive}) {
    HierarchySimulator base(baseline, policy, identity_io_mapping(baseline));
    const auto expect = base.run(trace);
    const StorageTopology disabled(disabled_cfg);
    HierarchySimulator off(disabled, policy, identity_io_mapping(disabled));
    EXPECT_EQ(off.run(trace), expect) << "disabled faults, policy "
                                      << static_cast<int>(policy);
    const StorageTopology zero(zero_cfg);
    HierarchySimulator none(zero, policy, identity_io_mapping(zero));
    EXPECT_EQ(none.run(trace), expect) << "zero-rate faults, policy "
                                       << static_cast<int>(policy);
    EXPECT_FALSE(none.run(trace).faults.any());
  }
}

TEST(FaultSimulationTest, TransientFailuresChargeRetriesAndBackoff) {
  TopologyConfig cfg = tiny_config();
  cfg.fault.enabled = true;
  cfg.fault.disk_transient_rate = 1.0;  // every attempt fails
  cfg.fault.max_retries = 2;
  const StorageTopology topo(cfg);
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto faulted = sim.run(single_thread_trace({1, 2, 3}));

  const StorageTopology clean(tiny_config());
  HierarchySimulator base(clean, PolicyKind::kLruInclusive,
                          identity_io_mapping(clean));
  const auto expect = base.run(single_thread_trace({1, 2, 3}));

  EXPECT_GT(faulted.faults.disk.transient_failures, 0u);
  EXPECT_EQ(faulted.faults.exhausted_retries, 3u);  // one per disk read
  EXPECT_GT(faulted.faults.disk.degraded_time, 0.0);
  EXPECT_GT(faulted.exec_time, expect.exec_time);
  // Cache behaviour (hits/misses) is unchanged — only time degrades.
  EXPECT_EQ(faulted.io.hits, expect.io.hits);
  EXPECT_EQ(faulted.disk_reads, expect.disk_reads);
}

TEST(FaultSimulationTest, SlowDiskMultipliesServiceTime) {
  TopologyConfig cfg = tiny_config();
  cfg.fault.enabled = true;
  cfg.fault.slow_disk_rate = 1.0;
  cfg.fault.slow_disk_multiplier = 8.0;
  const StorageTopology topo(cfg);
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto result = sim.run(single_thread_trace({1, 2, 3}));
  EXPECT_EQ(result.faults.disk.slow_services, result.disk_reads);
  EXPECT_GT(result.faults.disk.degraded_time, 0.0);
}

TEST(FaultSimulationTest, StorageOutageBypassesCache) {
  // Re-touching 1 after eviction from the 2-deep I/O cache would hit the
  // inclusive storage cache — but that cache is dark the whole run.
  TopologyConfig cfg = tiny_config(/*io_blocks=*/2);
  cfg.fault.enabled = true;
  cfg.fault.outages.push_back({FaultLayer::kStorage, 0, 0.0, 1e9});
  const StorageTopology topo(cfg);
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto result = sim.run(single_thread_trace({1, 2, 3, 1}));
  EXPECT_EQ(result.storage.lookups, 0u);
  EXPECT_GT(result.faults.storage.bypasses, 0u);
  EXPECT_EQ(result.disk_reads, 4u);  // every miss goes to disk
}

TEST(FaultSimulationTest, IoOutageBypassesIoCache) {
  TopologyConfig cfg = tiny_config();
  cfg.fault.enabled = true;
  cfg.fault.outages.push_back({FaultLayer::kIo, 0, 0.0, 1e9});
  cfg.fault.outages.push_back({FaultLayer::kIo, 1, 0.0, 1e9});
  const StorageTopology topo(cfg);
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto result = sim.run(single_thread_trace({1, 1, 1}));
  EXPECT_EQ(result.io.lookups, 0u);
  EXPECT_EQ(result.faults.io.bypasses, 3u);
  // The storage level still serves re-accesses.
  EXPECT_EQ(result.storage.hits, 2u);
}

TEST(FaultSimulationTest, RepeatedRunsReplayIdenticalFaults) {
  TopologyConfig cfg = tiny_config();
  cfg.fault.enabled = true;
  cfg.fault.disk_transient_rate = 0.3;
  cfg.fault.slow_disk_rate = 0.3;
  const StorageTopology topo(cfg);
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto trace = single_thread_trace({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const auto first = sim.run(trace);
  EXPECT_EQ(sim.run(trace), first);
  HierarchySimulator fresh(topo, PolicyKind::kLruInclusive,
                           identity_io_mapping(topo));
  EXPECT_EQ(fresh.run(trace), first);
}

TEST(WireCodecTest, RoundTripsBitExactly) {
  TopologyConfig cfg = tiny_config();
  cfg.fault.enabled = true;
  cfg.fault.disk_transient_rate = 0.3;
  const StorageTopology topo(cfg);
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto result = sim.run(single_thread_trace({1, 2, 3, 4, 5, 1, 2}));
  const auto decoded = from_wire(to_wire(result));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, result);  // bitwise-strict, doubles included
}

TEST(WireCodecTest, RejectsMalformedLines) {
  EXPECT_FALSE(from_wire("").has_value());
  EXPECT_FALSE(from_wire("not-a-result 1 2 3").has_value());
  EXPECT_FALSE(from_wire("sim-v1 1 2").has_value());
  const std::string good = to_wire(SimulationResult{});
  EXPECT_TRUE(from_wire(good).has_value());
  EXPECT_FALSE(from_wire(good + " 7").has_value());  // trailing fields
}

TEST(WireCodecTest, TenantSlicesRoundTripInV5) {
  SimulationResult result;
  result.accesses = 10;
  result.exec_time = 1.25;
  result.tenants.resize(2);
  result.tenants[0].accesses = 6;
  result.tenants[0].io_lookups = 6;
  result.tenants[0].io_hits = 4;
  result.tenants[0].bytes_filled = 4096;
  result.tenants[0].busy_time = 0.75;
  result.tenants[1].accesses = 4;
  result.tenants[1].disk_reads = 2;
  result.tenants[1].busy_time = 0.5;
  const std::string wire = to_wire(result);
  EXPECT_EQ(wire.rfind("sim-v5", 0), 0u);
  const auto decoded = from_wire(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, result);
  ASSERT_EQ(decoded->tenants.size(), 2u);
  EXPECT_EQ(decoded->tenants[1].disk_reads, 2u);
}

TEST(WireCodecTest, OlderVersionsParseWithTenantsEmpty) {
  // A v1–v3 line is exactly a v4 line with an older tag and without the
  // trailing tenant fields (the v1/v2 cases additionally drop queue/bound
  // fields, handled by the version cascade).
  const std::string v4 = to_wire(SimulationResult{});
  ASSERT_EQ(v4.substr(v4.size() - 2), " 0");  // tenant count
  const std::string v3 = "sim-v3" + v4.substr(6, v4.size() - 8);
  const auto decoded = from_wire(v3);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->tenants.empty());
  EXPECT_EQ(*decoded, SimulationResult{});
  // A v3 line must not accept tenant fields.
  EXPECT_FALSE(from_wire(v3 + " 0").has_value());
}

TEST(WireCodecTest, RejectsAbsurdTenantCounts) {
  const std::string v4 = to_wire(SimulationResult{});
  const std::string huge =
      v4.substr(0, v4.size() - 1) + std::to_string(1u << 20);
  EXPECT_FALSE(from_wire(huge).has_value());
}

}  // namespace
}  // namespace flo::storage
