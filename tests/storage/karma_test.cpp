#include "storage/karma.hpp"

#include <gtest/gtest.h>

namespace flo::storage {
namespace {

TEST(KarmaTest, DensestRangesPinnedAtIoLayer) {
  std::vector<RangeHint> hints = {
      {0, 0, 10, 5.0},   // dense
      {0, 10, 20, 1.0},  // sparse
  };
  const KarmaAllocator karma(hints, /*io=*/10, /*storage=*/10);
  EXPECT_EQ(karma.level_of({0, 5}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({0, 15}), CacheLevel::kStorage);
}

TEST(KarmaTest, OverflowBecomesUncached) {
  std::vector<RangeHint> hints = {
      {0, 0, 10, 5.0},
      {0, 10, 20, 3.0},
      {0, 20, 30, 1.0},
  };
  const KarmaAllocator karma(hints, 10, 10);
  EXPECT_EQ(karma.level_of({0, 0}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({0, 10}), CacheLevel::kStorage);
  EXPECT_EQ(karma.level_of({0, 25}), CacheLevel::kUncached);
  EXPECT_EQ(karma.ranges_at(CacheLevel::kIo), 1u);
  EXPECT_EQ(karma.ranges_at(CacheLevel::kStorage), 1u);
  EXPECT_EQ(karma.ranges_at(CacheLevel::kUncached), 1u);
}

TEST(KarmaTest, UnhintedBlocksUncached) {
  const KarmaAllocator karma({{0, 0, 4, 1.0}}, 8, 8);
  EXPECT_EQ(karma.level_of({0, 100}), CacheLevel::kUncached);
  EXPECT_EQ(karma.level_of({3, 0}), CacheLevel::kUncached);
}

TEST(KarmaTest, MultipleFiles) {
  std::vector<RangeHint> hints = {
      {0, 0, 5, 9.0},
      {2, 0, 5, 8.0},
  };
  const KarmaAllocator karma(hints, 10, 0);
  EXPECT_EQ(karma.level_of({0, 2}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({2, 2}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({1, 2}), CacheLevel::kUncached);
}

TEST(KarmaTest, SmallerRangeCanFillRemainingIoSpace) {
  // Greedy by density: a big medium-density range that does not fit the
  // remaining I/O space drops to the storage layer, while a later smaller
  // range may still fit above.
  std::vector<RangeHint> hints = {
      {0, 0, 8, 9.0},
      {0, 8, 24, 5.0},  // 16 blocks: does not fit remaining 2
      {0, 24, 26, 4.0}, // 2 blocks: fits
  };
  const KarmaAllocator karma(hints, 10, 100);
  EXPECT_EQ(karma.level_of({0, 0}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({0, 10}), CacheLevel::kStorage);
  EXPECT_EQ(karma.level_of({0, 24}), CacheLevel::kIo);
}

TEST(KarmaTest, BoundariesExclusive) {
  const KarmaAllocator karma({{0, 5, 10, 1.0}}, 100, 100);
  EXPECT_EQ(karma.level_of({0, 4}), CacheLevel::kUncached);
  EXPECT_EQ(karma.level_of({0, 5}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({0, 9}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({0, 10}), CacheLevel::kUncached);
}

TEST(KarmaTest, InvertedRangeRejected) {
  EXPECT_THROW(KarmaAllocator({{0, 10, 5, 1.0}}, 10, 10),
               std::invalid_argument);
}

TEST(KarmaTest, DeterministicTieBreak) {
  std::vector<RangeHint> hints = {
      {1, 0, 5, 2.0},
      {0, 0, 5, 2.0},
  };
  const KarmaAllocator karma(hints, 5, 5);
  // Equal densities: file 0 wins the I/O layer.
  EXPECT_EQ(karma.level_of({0, 0}), CacheLevel::kIo);
  EXPECT_EQ(karma.level_of({1, 0}), CacheLevel::kStorage);
}

TEST(KarmaTest, EmptyHints) {
  const KarmaAllocator karma({}, 10, 10);
  EXPECT_EQ(karma.level_of({0, 0}), CacheLevel::kUncached);
}

}  // namespace
}  // namespace flo::storage
