#include "storage/lru_cache.hpp"

#include <gtest/gtest.h>

namespace flo::storage {
namespace {

BlockKey key(FileId f, std::uint64_t b) { return {f, b}; }

TEST(BlockKeyTest, PackUnpackRoundTrip) {
  const BlockKey k{7, (1ull << 40) - 1};
  const BlockKey u = BlockKey::unpack(k.packed());
  EXPECT_EQ(u, k);
}

TEST(BlockKeyTest, DistinctFilesDistinctKeys) {
  EXPECT_NE(key(0, 5).packed(), key(1, 5).packed());
  EXPECT_NE(key(0, 5).packed(), key(0, 6).packed());
}

TEST(LruCacheTest, ZeroCapacityRejected) {
  EXPECT_THROW(LruCache(0), std::invalid_argument);
}

TEST(LruCacheTest, InsertAndContains) {
  LruCache cache(2);
  EXPECT_FALSE(cache.contains(key(0, 1)));
  EXPECT_EQ(cache.insert(key(0, 1)), std::nullopt);
  EXPECT_TRUE(cache.contains(key(0, 1)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.insert(key(0, 1));
  cache.insert(key(0, 2));
  const auto evicted = cache.insert(key(0, 3));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, key(0, 1));
  EXPECT_FALSE(cache.contains(key(0, 1)));
  EXPECT_TRUE(cache.contains(key(0, 2)));
  EXPECT_TRUE(cache.contains(key(0, 3)));
}

TEST(LruCacheTest, TouchPromotes) {
  LruCache cache(2);
  cache.insert(key(0, 1));
  cache.insert(key(0, 2));
  EXPECT_TRUE(cache.touch(key(0, 1)));  // 1 becomes MRU
  const auto evicted = cache.insert(key(0, 3));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, key(0, 2));  // 2 was LRU
}

TEST(LruCacheTest, TouchMissingReturnsFalse) {
  LruCache cache(2);
  EXPECT_FALSE(cache.touch(key(0, 9)));
}

TEST(LruCacheTest, ReinsertResidentPromotesWithoutEviction) {
  LruCache cache(2);
  cache.insert(key(0, 1));
  cache.insert(key(0, 2));
  EXPECT_EQ(cache.insert(key(0, 1)), std::nullopt);
  EXPECT_EQ(cache.size(), 2u);
  const auto evicted = cache.insert(key(0, 3));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, key(0, 2));
}

TEST(LruCacheTest, Erase) {
  LruCache cache(2);
  cache.insert(key(0, 1));
  EXPECT_TRUE(cache.erase(key(0, 1)));
  EXPECT_FALSE(cache.erase(key(0, 1)));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, LruKeyInspection) {
  LruCache cache(3);
  EXPECT_EQ(cache.lru_key(), std::nullopt);
  cache.insert(key(0, 1));
  cache.insert(key(0, 2));
  EXPECT_EQ(cache.lru_key(), std::optional<BlockKey>(key(0, 1)));
  cache.touch(key(0, 1));
  EXPECT_EQ(cache.lru_key(), std::optional<BlockKey>(key(0, 2)));
}

TEST(LruCacheTest, Clear) {
  LruCache cache(2);
  cache.insert(key(0, 1));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(key(0, 1)));
}

TEST(LruCacheTest, CapacityNeverExceeded) {
  LruCache cache(16);
  for (std::uint64_t b = 0; b < 1000; ++b) {
    cache.insert(key(0, b));
    EXPECT_LE(cache.size(), 16u);
  }
  // The 16 most recent blocks remain.
  for (std::uint64_t b = 984; b < 1000; ++b) {
    EXPECT_TRUE(cache.contains(key(0, b)));
  }
}

TEST(LruCacheTest, FilesDoNotCollide) {
  LruCache cache(4);
  cache.insert(key(0, 7));
  cache.insert(key(1, 7));
  EXPECT_TRUE(cache.contains(key(0, 7)));
  EXPECT_TRUE(cache.contains(key(1, 7)));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, ResidentRunCountsPrefixWithoutPromoting) {
  LruCache cache(8);
  for (std::uint64_t b = 0; b < 5; ++b) cache.insert(key(0, b));
  EXPECT_EQ(cache.resident_run(key(0, 1), 10), 4u);  // 1..4 resident
  EXPECT_EQ(cache.resident_run(key(0, 1), 2), 2u);   // capped by max
  EXPECT_EQ(cache.resident_run(key(0, 5), 3), 0u);   // starts at a miss
  // No recency change: block 0 is still the LRU victim.
  EXPECT_EQ(cache.lru_key(), key(0, 0));
}

TEST(LruCacheTest, TouchRunMatchesSequentialTouches) {
  LruCache run_cache(6);
  LruCache loop_cache(6);
  for (std::uint64_t b = 0; b < 6; ++b) {
    run_cache.insert(key(0, b));
    loop_cache.insert(key(0, b));
  }
  EXPECT_EQ(run_cache.touch_run(key(0, 1), 4), 4u);
  for (std::uint64_t b = 1; b < 5; ++b) EXPECT_TRUE(loop_cache.touch(key(0, b)));
  // Identical recency order afterwards: evictions proceed identically.
  for (std::uint64_t b = 100; b < 106; ++b) {
    EXPECT_EQ(run_cache.insert(key(0, b)), loop_cache.insert(key(0, b)));
  }
}

TEST(LruCacheTest, TouchRunStopsAtFirstMiss) {
  LruCache cache(8);
  cache.insert(key(0, 0));
  cache.insert(key(0, 1));
  cache.insert(key(0, 3));  // hole at block 2
  EXPECT_EQ(cache.touch_run(key(0, 0), 4), 2u);
  EXPECT_EQ(cache.touch_run(key(0, 2), 4), 0u);
}

}  // namespace
}  // namespace flo::storage
