#include "storage/mq_cache.hpp"

#include <gtest/gtest.h>

#include "storage/simulator.hpp"

namespace flo::storage {
namespace {

BlockKey key(std::uint64_t b) { return {0, b}; }

TEST(MqCacheTest, BasicInsertAndTouch) {
  MqCache cache(4);
  EXPECT_FALSE(cache.contains(key(1)));
  EXPECT_EQ(cache.insert(key(1)), std::nullopt);
  EXPECT_TRUE(cache.contains(key(1)));
  EXPECT_TRUE(cache.touch(key(1)));
  EXPECT_FALSE(cache.touch(key(99)));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MqCacheTest, ZeroCapacityRejected) {
  EXPECT_THROW(MqCache(0), std::invalid_argument);
  EXPECT_THROW(MqCache(4, 0), std::invalid_argument);
}

TEST(MqCacheTest, FrequencyPromotesQueues) {
  MqCache cache(8);
  cache.insert(key(1));
  EXPECT_EQ(cache.queue_of(key(1)), std::optional<std::size_t>(0));
  cache.touch(key(1));  // freq 2 -> queue 1
  EXPECT_EQ(cache.queue_of(key(1)), std::optional<std::size_t>(1));
  cache.touch(key(1));
  cache.touch(key(1));  // freq 4 -> queue 2
  EXPECT_EQ(cache.queue_of(key(1)), std::optional<std::size_t>(2));
}

TEST(MqCacheTest, HotBlockSurvivesScanUnlikeLru) {
  // The defining MQ property: a frequently-referenced block survives a
  // one-touch scan that would flush it out of plain LRU.
  constexpr std::size_t kCap = 8;
  MqCache mq(kCap);
  LruCache lru(kCap);
  const BlockKey hot = key(1000);
  for (int i = 0; i < 8; ++i) {
    mq.insert(hot);
    lru.insert(hot);
  }
  for (std::uint64_t b = 0; b < 2 * kCap; ++b) {
    mq.insert(key(b));
    lru.insert(key(b));
  }
  EXPECT_TRUE(mq.contains(hot));    // parked in a high-frequency queue
  EXPECT_FALSE(lru.contains(hot));  // LRU flushed it
}

TEST(MqCacheTest, GhostQueueRestoresFrequency) {
  MqCache cache(2);
  const BlockKey comeback = key(7);
  cache.insert(comeback);           // freq 1, queue 0
  cache.insert(key(100));
  cache.insert(key(101));           // evicts `comeback`; ghost records it
  ASSERT_FALSE(cache.contains(comeback));
  // Re-admission resumes one past the remembered frequency: freq 2 lands
  // in queue 1 instead of restarting cold in queue 0.
  cache.insert(comeback);
  ASSERT_TRUE(cache.contains(comeback));
  EXPECT_EQ(cache.queue_of(comeback), std::optional<std::size_t>(1));
}

TEST(MqCacheTest, GhostMemoryIsBounded) {
  MqCache cache(2);  // ghost window: 4 entries
  cache.insert(key(7));
  // Push 20 evictions through; key(7)'s ghost entry ages out.
  for (std::uint64_t b = 100; b < 120; ++b) cache.insert(key(b));
  cache.insert(key(7));
  EXPECT_EQ(cache.queue_of(key(7)), std::optional<std::size_t>(0));
}

TEST(MqCacheTest, ExpiryDemotesIdleBlocks) {
  MqCache cache(4, 8, /*life_time=*/4);
  const BlockKey idle = key(5);
  for (int i = 0; i < 4; ++i) cache.insert(idle);  // queue 2
  ASSERT_EQ(cache.queue_of(idle), std::optional<std::size_t>(2));
  // Touch other blocks long enough for `idle` to expire downward.
  for (std::uint64_t b = 0; b < 3; ++b) cache.insert(key(b));
  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t b = 0; b < 3; ++b) cache.touch(key(b));
  }
  ASSERT_TRUE(cache.contains(idle));
  EXPECT_LT(*cache.queue_of(idle), 2u);
}

TEST(MqCacheTest, CapacityNeverExceeded) {
  MqCache cache(16);
  for (std::uint64_t b = 0; b < 500; ++b) {
    cache.insert(key(b % 37));
    EXPECT_LE(cache.size(), 16u);
  }
}

TEST(MqCacheTest, EraseAndClear) {
  MqCache cache(4);
  cache.insert(key(1));
  EXPECT_TRUE(cache.erase(key(1)));
  EXPECT_FALSE(cache.erase(key(1)));
  cache.insert(key(2));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(key(2)));
}

TEST(MqCacheTest, TouchRunMatchesSequentialTouches) {
  // MQ's logical clock and expiry demotions advance per reference, so
  // touch_run must leave the cache in exactly the state n touches would.
  MqCache run_cache(8);
  MqCache loop_cache(8);
  for (std::uint64_t b = 0; b < 8; ++b) {
    run_cache.insert(key(b));
    loop_cache.insert(key(b));
  }
  EXPECT_EQ(run_cache.touch_run(key(2), 4), 4u);
  for (std::uint64_t b = 2; b < 6; ++b) EXPECT_TRUE(loop_cache.touch(key(b)));
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(run_cache.queue_of(key(b)), loop_cache.queue_of(key(b))) << b;
  }
  // Subsequent evictions agree too (same clocks, same queue contents).
  for (std::uint64_t b = 50; b < 54; ++b) {
    EXPECT_EQ(run_cache.insert(key(b)), loop_cache.insert(key(b)));
  }
}

TEST(MqCacheTest, TouchRunStopsAtFirstMiss) {
  MqCache cache(8);
  cache.insert(key(0));
  cache.insert(key(1));
  cache.insert(key(5));
  EXPECT_EQ(cache.touch_run(key(0), 8), 2u);
  EXPECT_EQ(cache.touch_run(key(3), 8), 0u);
}

TEST(MqPolicyTest, SimulatorRunsWithMqStorageLevel) {
  TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = 2 * c.block_size;
  c.storage_cache_bytes = 8 * c.block_size;
  const StorageTopology topo(c);
  HierarchySimulator sim(topo, PolicyKind::kMqInclusive, {0, 0, 1, 1});
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.repeat = 3;
  phase.per_thread.resize(1);
  for (std::uint64_t b = 0; b < 6; ++b) phase.per_thread[0].push_back({0, b, 1});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_GT(result.storage.lookups, 0u);
  EXPECT_GT(result.storage.hits, 0u);  // inclusive fill + MQ retention
}

}  // namespace
}  // namespace flo::storage
