#include <gtest/gtest.h>

#include "storage/simulator.hpp"

namespace flo::storage {
namespace {

TopologyConfig prefetch_config(std::uint32_t depth) {
  TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = 4 * c.block_size;
  c.storage_cache_bytes = 16 * c.block_size;
  c.prefetch_depth = depth;
  return c;
}

TraceProgram sequential_trace(std::uint64_t blocks) {
  TraceProgram trace;
  trace.file_blocks = {blocks + 16};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    phase.per_thread[0].push_back({0, b, 1});
  }
  trace.phases.push_back(std::move(phase));
  return trace;
}

std::vector<NodeId> io_map() { return {0, 0, 1, 1}; }

TEST(PrefetchTest, DisabledByDefault) {
  const StorageTopology topo(prefetch_config(0));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, io_map());
  const auto result = sim.run(sequential_trace(8));
  EXPECT_EQ(result.prefetches, 0u);
}

TEST(PrefetchTest, SequentialStreamTriggersReadahead) {
  const StorageTopology topo(prefetch_config(2));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, io_map());
  const auto result = sim.run(sequential_trace(8));
  EXPECT_GT(result.prefetches, 0u);
  // Readahead converts most of the stream's disk reads into storage hits.
  EXPECT_GT(result.storage.hits, 0u);
  EXPECT_LT(result.disk_reads, 8u);
}

TEST(PrefetchTest, ScatteredStreamDoesNotTrigger) {
  const StorageTopology topo(prefetch_config(2));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, io_map());
  TraceProgram trace;
  trace.file_blocks = {128};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  for (std::uint64_t b = 0; b < 8; ++b) {
    phase.per_thread[0].push_back({0, b * 17 % 128, 1});
  }
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.prefetches, 0u);
}

TEST(PrefetchTest, ReadaheadStopsAtFileEnd) {
  const StorageTopology topo(prefetch_config(8));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, io_map());
  TraceProgram trace;
  trace.file_blocks = {4};  // tiny file
  PhaseTrace phase;
  phase.per_thread.resize(1);
  for (std::uint64_t b = 0; b < 4; ++b) {
    phase.per_thread[0].push_back({0, b, 1});
  }
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  // At most the remaining blocks can ever be staged.
  EXPECT_LE(result.prefetches, 3u);
}

TEST(PrefetchTest, InterleavedStreamsFasterWithReadahead) {
  // A lone sequential stream already streams for free; readahead pays off
  // when another thread's seeks would otherwise break the stream. Thread 0
  // scans file 0 sequentially while thread 2 (other I/O node) hops around
  // file 1: without readahead every resumption of the stream pays a seek.
  TraceProgram trace;
  trace.file_blocks = {96, 512};
  PhaseTrace phase;
  phase.per_thread.resize(3);
  for (std::uint64_t b = 0; b < 64; ++b) {
    phase.per_thread[0].push_back({0, b, 1});
    phase.per_thread[2].push_back({1, (b * 97) % 512, 1});
  }
  trace.phases.push_back(std::move(phase));

  const StorageTopology off(prefetch_config(0));
  const StorageTopology on(prefetch_config(4));
  HierarchySimulator sim_off(off, PolicyKind::kLruInclusive, io_map());
  HierarchySimulator sim_on(on, PolicyKind::kLruInclusive, io_map());
  const auto r_off = sim_off.run(trace);
  const auto r_on = sim_on.run(trace);
  EXPECT_LT(r_on.thread_time[0], r_off.thread_time[0]);
  EXPECT_GT(r_on.prefetches, 0u);
}

}  // namespace
}  // namespace flo::storage
