// Tenant QoS unit coverage (DESIGN.md §4k): the spec parser, the
// largest-remainder quota apportionment, per-tenant cache partitions in
// both replacement policies, the pluggable disk scheduler, and the
// simulator's per-tenant attribution under partitioning — including the
// zero-access-tenant convention the delta-snapshot accounting must keep.
#include "storage/qos.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "storage/disk_sched.hpp"
#include "storage/lru_cache.hpp"
#include "storage/mq_cache.hpp"
#include "storage/simulator.hpp"

namespace flo::storage {
namespace {

// --- parse_qos_spec ------------------------------------------------------

TEST(ParseQosSpecTest, EmptySpecIsDisabled) {
  const QosConfig config = parse_qos_spec("");
  EXPECT_FALSE(config.enabled);
  EXPECT_EQ(config, QosConfig{});
}

TEST(ParseQosSpecTest, FullSpec) {
  const QosConfig config = parse_qos_spec(
      "shares=4:2:1,prio=2:1:1,dynamic=1,epoch=512,sched=priority,"
      "window=0.05");
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.shares, (std::vector<std::uint32_t>{4, 2, 1}));
  EXPECT_EQ(config.priorities, (std::vector<std::uint32_t>{2, 1, 1}));
  EXPECT_TRUE(config.dynamic_shares);
  EXPECT_EQ(config.epoch_accesses, 512u);
  EXPECT_EQ(config.scheduler, SchedPolicyKind::kPriority);
  EXPECT_DOUBLE_EQ(config.sched_window, 0.05);
}

TEST(ParseQosSpecTest, MalformedSpecsThrow) {
  EXPECT_THROW(parse_qos_spec("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("shares"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("shares=0:1"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("shares=a:b"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("prio=1:0"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("sched=elevator"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("epoch=0"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("window=0"), std::invalid_argument);
  EXPECT_THROW(parse_qos_spec("window=nope"), std::invalid_argument);
  // Dynamic mode has nothing to rebalance without shares.
  EXPECT_THROW(parse_qos_spec("dynamic=1"), std::invalid_argument);
}

TEST(ParseSchedPolicyTest, NamesRoundTrip) {
  for (SchedPolicyKind policy :
       {SchedPolicyKind::kLook, SchedPolicyKind::kFcfs,
        SchedPolicyKind::kPriority}) {
    const auto parsed = parse_sched_policy(sched_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_sched_policy("elevator").has_value());
  EXPECT_FALSE(parse_sched_policy("LOOK").has_value());
}

// --- quota_partition -----------------------------------------------------

TEST(QuotaPartitionTest, EqualSharesSplitEvenly) {
  const auto quota = quota_partition(8, 2, {});
  EXPECT_EQ(quota, (std::vector<std::size_t>{4, 4}));
}

TEST(QuotaPartitionTest, WeightedSharesApportionExactly) {
  const auto quota = quota_partition(7, 3, {4, 2, 1});
  EXPECT_EQ(quota, (std::vector<std::size_t>{4, 2, 1}));
}

TEST(QuotaPartitionTest, SumsToCapacityWithRemainders) {
  const auto quota = quota_partition(10, 3, {1, 1, 1});
  EXPECT_EQ(std::accumulate(quota.begin(), quota.end(), std::size_t{0}),
            10u);
  // Largest-remainder with equal weights: the extra block goes to the
  // lowest tenant id.
  EXPECT_EQ(quota, (std::vector<std::size_t>{4, 3, 3}));
}

TEST(QuotaPartitionTest, OneBlockFloorForStarvedTenants) {
  const auto quota = quota_partition(4, 3, {100, 1, 1});
  EXPECT_EQ(std::accumulate(quota.begin(), quota.end(), std::size_t{0}), 4u);
  EXPECT_GE(quota[1], 1u);
  EXPECT_GE(quota[2], 1u);
}

TEST(QuotaPartitionTest, RejectsImpossibleConfigurations) {
  EXPECT_THROW(quota_partition(2, 3, {}), std::invalid_argument);
  EXPECT_THROW(quota_partition(8, 3, {1, 1}), std::invalid_argument);
}

// --- LruCache partitions -------------------------------------------------

TEST(LruPartitionTest, VictimsComeFromTheOwnersOwnPartition) {
  LruCache cache(4);
  cache.set_partitions({2, 2});
  ASSERT_TRUE(cache.partitioned());

  cache.insert({0, 1}, 0);
  cache.insert({0, 2}, 0);
  cache.insert({1, 1}, 1);

  // Tenant 0 overflows its 2-block quota: the victim is its own LRU
  // (block 1), never tenant 1's resident block.
  const auto victim = cache.insert({0, 3}, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, (BlockKey{0, 1}));
  EXPECT_TRUE(cache.contains({1, 1}));
  EXPECT_EQ(cache.partition_occupancy(0), 2u);
  EXPECT_EQ(cache.partition_occupancy(1), 1u);
  EXPECT_EQ(cache.owner_of({0, 3}), std::optional<std::uint32_t>{0});
  EXPECT_EQ(cache.owner_of({1, 1}), std::optional<std::uint32_t>{1});
}

TEST(LruPartitionTest, QuotaSumAboveCapacityRejected) {
  LruCache cache(4);
  EXPECT_THROW(cache.set_partitions({3, 2}), std::invalid_argument);
}

TEST(LruPartitionTest, ShrinkingAQuotaEvictsItsLruBlocks) {
  LruCache cache(4);
  cache.set_partitions({3, 1});
  cache.insert({0, 1}, 0);
  cache.insert({0, 2}, 0);
  cache.insert({0, 3}, 0);
  const auto victims = cache.set_partition_quota(0, 1);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], (BlockKey{0, 1}));  // LRU first
  EXPECT_EQ(victims[1], (BlockKey{0, 2}));
  EXPECT_EQ(cache.partition_quota(0), 1u);
  EXPECT_TRUE(cache.contains({0, 3}));
  // Growing never evicts.
  EXPECT_TRUE(cache.set_partition_quota(0, 3).empty());
}

TEST(LruPartitionTest, SingleFullPartitionMatchesUnpartitionedCache) {
  LruCache plain(3);
  LruCache single(3);
  single.set_partitions({3});
  const std::vector<std::uint64_t> refs = {1, 2, 3, 1, 4, 2, 5, 5, 1};
  for (std::uint64_t b : refs) {
    const BlockKey key{0, b};
    const bool hit_plain = plain.touch(key);
    const bool hit_single = single.touch(key);
    EXPECT_EQ(hit_plain, hit_single) << "block " << b;
    if (!hit_plain) {
      EXPECT_EQ(plain.insert(key), single.insert(key, 0)) << "block " << b;
    }
  }
  EXPECT_EQ(plain.size(), single.size());
}

// --- MqCache partitions --------------------------------------------------

TEST(MqPartitionTest, VictimsComeFromTheOwnersOwnPartition) {
  MqCache cache(4);
  cache.set_partitions({2, 2});
  cache.insert({0, 1}, 0);
  cache.insert({0, 2}, 0);
  cache.insert({1, 1}, 1);
  const auto victim = cache.insert({0, 3}, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->file, 0u);
  EXPECT_TRUE(cache.contains({1, 1}));
  EXPECT_EQ(cache.partition_occupancy(0), 2u);
  EXPECT_EQ(cache.partition_occupancy(1), 1u);
}

TEST(MqPartitionTest, HitsRouteToTheOwningPartition) {
  MqCache cache(4);
  cache.set_partitions({2, 2});
  cache.insert({0, 1}, 0);
  // A hit issued by another tenant still touches the owner's partition:
  // ownership is set at insert and never migrates.
  EXPECT_TRUE(cache.touch({0, 1}, 1));
  EXPECT_EQ(cache.owner_of({0, 1}), std::optional<std::uint32_t>{0});
  EXPECT_EQ(cache.partition_occupancy(1), 0u);
}

TEST(MqPartitionTest, SingleFullPartitionMatchesUnpartitionedCache) {
  MqCache plain(3);
  MqCache single(3);
  single.set_partitions({3});
  const std::vector<std::uint64_t> refs = {1, 2, 3, 1, 4, 2, 5, 5, 1, 3};
  for (std::uint64_t b : refs) {
    const BlockKey key{0, b};
    const bool hit_plain = plain.touch(key);
    const bool hit_single = single.touch(key, 0);
    EXPECT_EQ(hit_plain, hit_single) << "block " << b;
    if (!hit_plain) {
      EXPECT_EQ(plain.insert(key), single.insert(key, 0)) << "block " << b;
    }
  }
  EXPECT_EQ(plain.size(), single.size());
}

// --- DiskScheduler -------------------------------------------------------

TEST(DiskSchedulerTest, FcfsPopsInArrivalOrder) {
  DiskScheduler sched(SchedPolicyKind::kFcfs, 20e-3);
  sched.push(/*lba=*/90, /*thread=*/0, /*arrival=*/0.0, /*priority=*/1);
  sched.push(10, 1, 0.1, 1);
  sched.push(50, 2, 0.2, 1);
  EXPECT_EQ(sched.pop(0), 0u);
  EXPECT_EQ(sched.pop(0), 1u);
  EXPECT_EQ(sched.pop(0), 2u);
  EXPECT_TRUE(sched.empty());
}

TEST(DiskSchedulerTest, LookSweepsUpwardThenReverses) {
  DiskScheduler sched(SchedPolicyKind::kLook, 20e-3);
  sched.push(30, 0, 0.0, 1);
  sched.push(10, 1, 0.0, 1);
  sched.push(50, 2, 0.0, 1);
  // Head at 20, sweeping upward: 30, then 50, then reverse down to 10.
  EXPECT_EQ(sched.pop(20), 0u);
  EXPECT_EQ(sched.pop(30), 2u);
  EXPECT_EQ(sched.pop(50), 1u);
}

TEST(DiskSchedulerTest, PriorityPopsTheEarliestDeadline) {
  DiskScheduler sched(SchedPolicyKind::kPriority, 20e-3);
  // Same arrival: deadline = arrival + window / priority, so the
  // priority-4 request's deadline is earliest regardless of lba order.
  sched.push(10, 0, 0.0, 1);
  sched.push(90, 1, 0.0, 4);
  sched.push(50, 2, 0.0, 2);
  EXPECT_EQ(sched.pop(0), 1u);
  EXPECT_EQ(sched.pop(0), 2u);
  EXPECT_EQ(sched.pop(0), 0u);
}

TEST(DiskSchedulerTest, PriorityNeverStarvesEarlyArrivals) {
  DiskScheduler sched(SchedPolicyKind::kPriority, 20e-3);
  // A low-priority request admitted early beats a high-priority request
  // admitted much later: deadlines are fixed at enqueue, so waiting wins.
  sched.push(10, 0, 0.0, 1);     // deadline 0.020
  sched.push(90, 1, 0.030, 4);   // deadline 0.035
  EXPECT_EQ(sched.pop(0), 0u);
  EXPECT_EQ(sched.pop(0), 1u);
}

TEST(DiskSchedulerTest, PopOnEmptyThrows) {
  DiskScheduler sched(SchedPolicyKind::kFcfs, 20e-3);
  EXPECT_THROW(sched.pop(0), std::logic_error);
}

// --- simulator attribution under partitioning ----------------------------

TopologyConfig qos_config(std::vector<std::uint32_t> shares) {
  TopologyConfig c;
  c.compute_nodes = 2;
  c.io_nodes = 1;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = 4 * c.block_size;
  c.storage_cache_bytes = 8 * c.block_size;
  c.qos.enabled = true;
  c.qos.shares = std::move(shares);
  return c;
}

TraceProgram two_thread_trace(std::vector<std::uint64_t> thread0,
                              std::vector<std::uint64_t> thread1) {
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(2);
  for (std::uint64_t b : thread0) phase.per_thread[0].push_back({0, b, 1});
  for (std::uint64_t b : thread1) phase.per_thread[1].push_back({0, b, 1});
  trace.phases.push_back(std::move(phase));
  return trace;
}

TEST(SimulatorQosTest, ZeroAccessTenantSnapshotsToAllZero) {
  const StorageTopology topo(qos_config({1, 1}));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         {0, 0});
  sim.set_tenants({0, 1}, 2);
  // Tenant 1's thread issues nothing: its delta-snapshot slice must be
  // all-zero (any() false), even though a quota was carved out for it.
  const auto result =
      sim.run(two_thread_trace({1, 2, 3, 1, 2, 3}, {}));
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_FALSE(result.tenants[1].any());
  EXPECT_EQ(result.tenants[1], TenantStats{});
  // ...and tenant 0's slice conserves the aggregates exactly.
  EXPECT_EQ(result.tenants[0].accesses, result.accesses);
  EXPECT_EQ(result.tenants[0].io_lookups, result.io.lookups);
  EXPECT_EQ(result.tenants[0].io_hits, result.io.hits);
  EXPECT_GT(result.tenants[0].occupancy_peak, 0u);
}

TEST(SimulatorQosTest, EvictionsAreAttributedToTheInsertingTenant) {
  const StorageTopology topo(qos_config({1, 1}));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, {0, 0});
  sim.set_tenants({0, 1}, 2);
  // The shared I/O cache holds 4 blocks, 2 per tenant. Tenant 0 streams
  // 4 distinct blocks through its 2-block quota and must absorb its own
  // evictions; tenant 1 touches 2 blocks and evicts nothing.
  const auto result = sim.run(
      two_thread_trace({10, 11, 12, 13}, {30, 31}));
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_GT(result.tenants[0].io_evictions, 0u);
  EXPECT_EQ(result.tenants[1].io_evictions, 0u);
  EXPECT_EQ(result.tenants[0].io_evictions + result.tenants[1].io_evictions,
            result.io.evictions);
  EXPECT_LE(result.tenants[1].occupancy_peak, 4u);
}

TEST(SimulatorQosTest, FewerSharesThanTenantsRejected) {
  const StorageTopology topo(qos_config({1}));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, {0, 0});
  sim.set_tenants({0, 1}, 2);
  EXPECT_THROW(sim.run(two_thread_trace({1}, {2})), std::invalid_argument);
}

}  // namespace
}  // namespace flo::storage
