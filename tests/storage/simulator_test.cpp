#include "storage/simulator.hpp"

#include <gtest/gtest.h>

namespace flo::storage {
namespace {

/// A small topology: 4 compute nodes, 2 I/O nodes, 1 storage node, tiny
/// caches so eviction paths are exercised with handfuls of blocks.
TopologyConfig tiny_config(std::size_t io_blocks = 4,
                           std::size_t storage_blocks = 8) {
  TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = io_blocks * c.block_size;
  c.storage_cache_bytes = storage_blocks * c.block_size;
  return c;
}

std::vector<NodeId> identity_io_mapping(const StorageTopology& topo) {
  std::vector<NodeId> out(topo.config().compute_nodes);
  for (NodeId c = 0; c < out.size(); ++c) out[c] = topo.io_node_of(c);
  return out;
}

TraceProgram single_thread_trace(std::vector<std::uint64_t> blocks,
                                 std::uint64_t file_blocks = 64,
                                 std::uint32_t repeat = 1) {
  TraceProgram trace;
  trace.file_blocks = {file_blocks};
  PhaseTrace phase;
  phase.repeat = repeat;
  phase.per_thread.resize(1);
  for (std::uint64_t b : blocks) phase.per_thread[0].push_back({0, b, 1});
  trace.phases.push_back(std::move(phase));
  return trace;
}

TEST(SimulatorTest, ColdMissesThenHits) {
  const StorageTopology topo(tiny_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto result = sim.run(single_thread_trace({1, 2, 1, 2}));
  EXPECT_EQ(result.io.lookups, 4u);
  EXPECT_EQ(result.io.hits, 2u);
  EXPECT_EQ(result.storage.lookups, 2u);  // the two cold misses
  EXPECT_EQ(result.storage.hits, 0u);
  EXPECT_EQ(result.disk_reads, 2u);
}

TEST(SimulatorTest, InclusiveStorageHitAfterIoEviction) {
  const StorageTopology topo(tiny_config(/*io_blocks=*/2,
                                         /*storage_blocks=*/8));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  // Touch 1..3 (evicting 1 from the 2-block I/O cache), then re-touch 1:
  // it misses at I/O but hits the inclusive storage cache.
  const auto result = sim.run(single_thread_trace({1, 2, 3, 1}));
  EXPECT_EQ(result.io.hits, 0u);
  EXPECT_EQ(result.storage.lookups, 4u);
  EXPECT_EQ(result.storage.hits, 1u);
  EXPECT_EQ(result.disk_reads, 3u);
}

TEST(SimulatorTest, DemoteLruPopulatesStorageByDemotionOnly) {
  const StorageTopology topo(tiny_config(/*io_blocks=*/2,
                                         /*storage_blocks=*/8));
  HierarchySimulator sim(topo, PolicyKind::kDemoteLru,
                         identity_io_mapping(topo));
  // 1, 2 fill the I/O cache; 3 evicts 1 which is demoted; re-access of 1
  // hits the storage cache (exclusively) and is promoted back up.
  const auto result = sim.run(single_thread_trace({1, 2, 3, 1}));
  EXPECT_EQ(result.demotions, 2u);  // evictions of 1 (then of 2)
  EXPECT_EQ(result.storage.hits, 1u);
  EXPECT_EQ(result.disk_reads, 3u);
}

TEST(SimulatorTest, DemoteLruStorageHitRemovesBlockBelow) {
  const StorageTopology topo(tiny_config(2, 8));
  HierarchySimulator sim(topo, PolicyKind::kDemoteLru,
                         identity_io_mapping(topo));
  // After {1,2,3}: storage holds demoted 1. Then 1 hits storage (promoted,
  // removed below) and 4, 1 again: the second 1 must hit I/O (it was
  // promoted there), not storage.
  const auto result = sim.run(single_thread_trace({1, 2, 3, 1, 1}));
  EXPECT_EQ(result.storage.hits, 1u);
  EXPECT_EQ(result.io.hits, 1u);
}

TEST(SimulatorTest, KarmaPinsRangesExclusively) {
  const StorageTopology topo(tiny_config(4, 8));
  std::vector<RangeHint> hints = {
      {0, 0, 4, 10.0},   // hottest: pinned at I/O (aggregate capacity 8)
      {0, 4, 12, 2.0},   // pinned at storage
      {0, 12, 64, 0.1},  // uncached
  };
  HierarchySimulator sim(topo, PolicyKind::kKarma,
                         identity_io_mapping(topo), hints);
  const auto result =
      sim.run(single_thread_trace({0, 0, 5, 5, 20, 20}));
  // Block 0: I/O-pinned (1 miss + 1 hit). Block 5: storage-pinned
  // (1 miss + 1 hit). Block 20: uncached (2 disk reads).
  EXPECT_EQ(result.io.lookups, 2u);
  EXPECT_EQ(result.io.hits, 1u);
  EXPECT_EQ(result.storage.lookups, 2u);
  EXPECT_EQ(result.storage.hits, 1u);
  EXPECT_EQ(result.disk_reads, 4u);
}

TEST(SimulatorTest, RepeatReplaysPhase) {
  const StorageTopology topo(tiny_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto result = sim.run(single_thread_trace({1, 2}, 64, /*repeat=*/3));
  EXPECT_EQ(result.io.lookups, 6u);
  EXPECT_EQ(result.io.hits, 4u);  // warm after the first repetition
}

TEST(SimulatorTest, SharedIoCacheAcrossThreads) {
  const StorageTopology topo(tiny_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  // Pinned to the clock core: it services each request atomically, so the
  // second thread's access sees the first one's fill. The event core keeps
  // both misses concurrently in flight (see event_core_test.cpp).
  sim.set_core(SimCoreKind::kClock);
  // Threads 0 and 1 share I/O node 0: thread 1 hits thread 0's block.
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(2);
  phase.per_thread[0].push_back({0, 7, 1});
  phase.per_thread[1].push_back({0, 7, 1});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.io.lookups, 2u);
  EXPECT_EQ(result.io.hits, 1u);
  EXPECT_EQ(result.disk_reads, 1u);
}

TEST(SimulatorTest, SeparateIoCachesDoNotShare) {
  const StorageTopology topo(tiny_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  // Pinned to the clock core's atomic request servicing (see above).
  sim.set_core(SimCoreKind::kClock);
  // Threads 0 and 2 are on different I/O nodes; the second access misses
  // at I/O but hits the shared storage cache.
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(3);
  phase.per_thread[0].push_back({0, 7, 1});
  phase.per_thread[2].push_back({0, 7, 1});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.io.hits, 0u);
  EXPECT_EQ(result.storage.hits, 1u);
  EXPECT_EQ(result.disk_reads, 1u);
}

TEST(SimulatorTest, ExecTimeIsMaxOverThreads) {
  const StorageTopology topo(tiny_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(2);
  for (std::uint64_t b = 0; b < 3; ++b) phase.per_thread[0].push_back({0, b, 1});
  phase.per_thread[1].push_back({0, 50, 1});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  ASSERT_EQ(result.thread_time.size(), 4u);
  EXPECT_GE(result.thread_time[0], result.thread_time[1]);
  EXPECT_GE(result.exec_time, result.thread_time[0]);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const StorageTopology topo(tiny_config());
  const auto trace = single_thread_trace({3, 1, 4, 1, 5, 9, 2, 6}, 64, 2);
  HierarchySimulator a(topo, PolicyKind::kLruInclusive,
                       identity_io_mapping(topo));
  HierarchySimulator b(topo, PolicyKind::kLruInclusive,
                       identity_io_mapping(topo));
  const auto ra = a.run(trace);
  const auto rb = b.run(trace);
  EXPECT_EQ(ra.exec_time, rb.exec_time);
  EXPECT_EQ(ra.io.hits, rb.io.hits);
  EXPECT_EQ(ra.storage.hits, rb.storage.hits);
}

TEST(SimulatorTest, DisabledIoCacheRoutesToStorage) {
  TopologyConfig c = tiny_config();
  c.io_cache_enabled = false;
  const StorageTopology topo(c);
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  const auto result = sim.run(single_thread_trace({1, 1}));
  EXPECT_EQ(result.io.lookups, 0u);
  EXPECT_EQ(result.storage.lookups, 2u);
  EXPECT_EQ(result.storage.hits, 1u);
}

TEST(SimulatorTest, ElementCountsAccumulate) {
  const StorageTopology topo(tiny_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive,
                         identity_io_mapping(topo));
  TraceProgram trace;
  trace.file_blocks = {64};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  phase.per_thread[0].push_back({0, 1, 100});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.elements, 100u);
  EXPECT_EQ(result.accesses, 1u);
}

TEST(SimulatorTest, BadThreadMappingRejected) {
  const StorageTopology topo(tiny_config());
  EXPECT_THROW(HierarchySimulator(topo, PolicyKind::kLruInclusive, {99}),
               std::invalid_argument);
}

TEST(SimulatorTest, StatsSummaryMentionsMissRates) {
  SimulationResult r;
  r.io.lookups = 10;
  r.io.hits = 9;
  r.exec_time = 1.5;
  EXPECT_NE(r.summary().find("10.0%"), std::string::npos);
}

TEST(LayerStatsTest, Rates) {
  LayerStats s;
  EXPECT_EQ(s.hit_rate(), 0.0);
  EXPECT_EQ(s.miss_rate(), 0.0);
  s.lookups = 4;
  s.hits = 3;
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.25);
  EXPECT_EQ(s.misses(), 1u);
}

}  // namespace
}  // namespace flo::storage
