// Wire-format coverage for the sim-v5 revision (DESIGN.md §4k): the
// per-tenant QoS fields ride at the end of each tenant record, doubles
// stay C99 hexfloats (bit-exact round trips), sim-v4 lines still parse
// with the QoS fields zero, and trailing fields are rejected.
#include "storage/stats.hpp"

#include <gtest/gtest.h>

#include <string>

namespace flo::storage {
namespace {

SimulationResult sample_result() {
  SimulationResult r;
  r.io = {100, 60, 40, 12, 40 * 2048};
  r.storage = {40, 10, 30, 3, 30 * 2048};
  r.exec_time = 0.1 + 0.2;  // not exactly representable: hexfloat territory
  r.thread_time = {0.3, 1.0 / 3.0};
  r.disk_reads = 30;
  r.accesses = 100;
  r.elements = 400;

  TenantStats t0;
  t0.accesses = 70;
  t0.elements = 280;
  t0.io_lookups = 70;
  t0.io_hits = 45;
  t0.busy_time = 2.0 / 7.0;
  t0.io_evictions = 9;
  t0.storage_evictions = 2;
  t0.occupancy_peak = 5;
  TenantStats t1;
  t1.accesses = 30;
  t1.io_lookups = 30;
  t1.io_hits = 15;
  t1.busy_time = 0.125;
  r.tenants = {t0, t1};
  return r;
}

/// Drops the last `n` space-separated tokens from a wire line.
std::string drop_tokens(std::string line, int n) {
  for (int i = 0; i < n; ++i) {
    line.resize(line.find_last_of(' '));
  }
  return line;
}

TEST(StatsWireTest, V5RoundTripIsBitExact) {
  const SimulationResult result = sample_result();
  const std::string wire = to_wire(result);
  EXPECT_EQ(wire.rfind("sim-v5 ", 0), 0u) << wire;
  const auto back = from_wire(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, result);  // doubles included — hexfloats are lossless
  ASSERT_EQ(back->tenants.size(), 2u);
  EXPECT_EQ(back->tenants[0].io_evictions, 9u);
  EXPECT_EQ(back->tenants[0].storage_evictions, 2u);
  EXPECT_EQ(back->tenants[0].occupancy_peak, 5u);
  EXPECT_DOUBLE_EQ(back->tenants[0].busy_time, 2.0 / 7.0);
}

TEST(StatsWireTest, V4LinesStillParseWithZeroQosFields) {
  SimulationResult result = sample_result();
  result.tenants.resize(1);  // one tenant: its record is the line's tail
  std::string v4 = to_wire(result);
  v4.replace(0, 6, "sim-v4");
  v4 = drop_tokens(v4, 3);  // strip io_evictions storage_evictions occ_peak
  const auto back = from_wire(v4);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->tenants.size(), 1u);
  EXPECT_EQ(back->tenants[0].io_evictions, 0u);
  EXPECT_EQ(back->tenants[0].storage_evictions, 0u);
  EXPECT_EQ(back->tenants[0].occupancy_peak, 0u);
  // Everything else survives: zero the QoS fields and require equality.
  result.tenants[0].io_evictions = 0;
  result.tenants[0].storage_evictions = 0;
  result.tenants[0].occupancy_peak = 0;
  EXPECT_EQ(*back, result);
}

TEST(StatsWireTest, TrailingFieldsAreRejected) {
  const std::string wire = to_wire(sample_result());
  EXPECT_FALSE(from_wire(wire + " 7").has_value());
  // A v4-tagged line that still carries the v5 per-tenant fields has
  // three extra tokens per tenant — trailing garbage, rejected.
  std::string v4 = wire;
  v4.replace(0, 6, "sim-v4");
  EXPECT_FALSE(from_wire(v4).has_value());
}

TEST(StatsWireTest, TruncatedLinesAreRejectedNotCrashed) {
  const std::string wire = to_wire(sample_result());
  for (std::size_t cut = 0; cut < wire.size(); cut += 11) {
    EXPECT_FALSE(from_wire(wire.substr(0, cut)).has_value()) << cut;
  }
}

}  // namespace
}  // namespace flo::storage
