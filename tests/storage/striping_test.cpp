#include "storage/striping.hpp"

#include <gtest/gtest.h>

#include <map>

namespace flo::storage {
namespace {

TEST(StripingTest, RoundRobinAcrossNodes) {
  const Striping s(4, {16});
  EXPECT_EQ(s.storage_node_of({0, 0}), 0u);
  EXPECT_EQ(s.storage_node_of({0, 1}), 1u);
  EXPECT_EQ(s.storage_node_of({0, 4}), 0u);
  EXPECT_EQ(s.storage_node_of({0, 7}), 3u);
}

TEST(StripingTest, LocalStripesSequential) {
  const Striping s(4, {16});
  // Blocks 0, 4, 8, 12 live on node 0 at LBAs 0, 1, 2, 3.
  EXPECT_EQ(s.lba_of({0, 0}), 0u);
  EXPECT_EQ(s.lba_of({0, 4}), 1u);
  EXPECT_EQ(s.lba_of({0, 8}), 2u);
  EXPECT_EQ(s.lba_of({0, 12}), 3u);
}

TEST(StripingTest, FilesOccupyDisjointRegions) {
  const Striping s(2, {10, 10});
  std::map<std::pair<NodeId, std::uint64_t>, BlockKey> seen;
  for (FileId f = 0; f < 2; ++f) {
    for (std::uint64_t b = 0; b < 10; ++b) {
      const BlockKey k{f, b};
      const auto addr = std::make_pair(s.storage_node_of(k), s.lba_of(k));
      EXPECT_EQ(seen.count(addr), 0u)
          << "collision at node " << addr.first << " lba " << addr.second;
      seen.emplace(addr, k);
    }
  }
}

TEST(StripingTest, BlocksOnNodeBalanced) {
  const Striping s(4, {17});
  // 17 blocks over 4 nodes: 5, 4, 4, 4.
  EXPECT_EQ(s.blocks_on_node(0), 5u);
  EXPECT_EQ(s.blocks_on_node(1), 4u);
  EXPECT_EQ(s.blocks_on_node(2), 4u);
  EXPECT_EQ(s.blocks_on_node(3), 4u);
  EXPECT_THROW(s.blocks_on_node(4), std::out_of_range);
}

TEST(StripingTest, SecondFileBasesAfterFirst) {
  const Striping s(2, {4, 4});
  // File 0 places 2 blocks per node; file 1 starts after them.
  EXPECT_EQ(s.lba_of({1, 0}), 2u);
  EXPECT_EQ(s.lba_of({1, 1}), 2u);  // node 1's region also starts at 2
}

TEST(StripingTest, EmptyFileHandled) {
  const Striping s(2, {0, 4});
  EXPECT_EQ(s.lba_of({1, 0}), 0u);
  EXPECT_EQ(s.file_blocks(0), 0u);
}

TEST(StripingTest, InvalidArguments) {
  EXPECT_THROW(Striping(0, {4}), std::invalid_argument);
  const Striping s(2, {4});
  EXPECT_THROW(s.storage_node_of({1, 0}), std::out_of_range);
  EXPECT_THROW(s.file_blocks(1), std::out_of_range);
}

TEST(StripingTest, SingleNodeDegenerate) {
  const Striping s(1, {8});
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(s.storage_node_of({0, b}), 0u);
    EXPECT_EQ(s.lba_of({0, b}), b);
  }
}

}  // namespace
}  // namespace flo::storage
