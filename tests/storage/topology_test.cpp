#include "storage/topology.hpp"

#include <gtest/gtest.h>

namespace flo::storage {
namespace {

TEST(TopologyConfigTest, PaperDefaultKeepsRatios) {
  const TopologyConfig c = TopologyConfig::paper_default();
  EXPECT_EQ(c.compute_nodes, 64u);
  EXPECT_EQ(c.io_nodes, 16u);
  EXPECT_EQ(c.storage_nodes, 4u);
  // Table 1 ratio: storage cache = 2x I/O cache.
  EXPECT_EQ(c.storage_cache_bytes, 2 * c.io_cache_bytes);
}

TEST(TopologyConfigTest, UnscaledMatchesTable1) {
  const TopologyConfig c = TopologyConfig::paper_default(1, 1);
  EXPECT_EQ(c.block_size, 128ull << 10);
  EXPECT_EQ(c.io_cache_bytes, 1ull << 30);
  EXPECT_EQ(c.storage_cache_bytes, 2ull << 30);
}

TEST(TopologyConfigTest, BadScalesRejected) {
  EXPECT_THROW(TopologyConfig::paper_default(0, 1), std::invalid_argument);
  EXPECT_THROW(TopologyConfig::paper_default(1, 0), std::invalid_argument);
  EXPECT_THROW(TopologyConfig::paper_default(1ull << 40, 1),
               std::invalid_argument);
}

TEST(StorageTopologyTest, RoutingHelpers) {
  const StorageTopology topo(TopologyConfig::paper_default());
  EXPECT_EQ(topo.compute_per_io(), 4u);
  EXPECT_EQ(topo.io_per_storage(), 4u);
  EXPECT_EQ(topo.io_node_of(0), 0u);
  EXPECT_EQ(topo.io_node_of(3), 0u);
  EXPECT_EQ(topo.io_node_of(4), 1u);
  EXPECT_EQ(topo.io_node_of(63), 15u);
  EXPECT_EQ(topo.storage_node_of_io(0), 0u);
  EXPECT_EQ(topo.storage_node_of_io(15), 3u);
  EXPECT_THROW(topo.io_node_of(64), std::out_of_range);
  EXPECT_THROW(topo.storage_node_of_io(16), std::out_of_range);
}

TEST(StorageTopologyTest, CacheBlockCounts) {
  TopologyConfig c = TopologyConfig::paper_default();
  const StorageTopology topo(c);
  EXPECT_EQ(topo.io_cache_blocks(), c.io_cache_bytes / c.block_size);
  EXPECT_EQ(topo.storage_cache_blocks(),
            c.storage_cache_bytes / c.block_size);
}

TEST(StorageTopologyTest, ValidatesDivisibility) {
  TopologyConfig c = TopologyConfig::paper_default();
  c.compute_nodes = 63;
  EXPECT_THROW(StorageTopology{c}, std::invalid_argument);
  c = TopologyConfig::paper_default();
  c.io_nodes = 6;  // does not divide into 4 storage nodes
  EXPECT_THROW(StorageTopology{c}, std::invalid_argument);
}

TEST(StorageTopologyTest, ValidatesCapacities) {
  TopologyConfig c = TopologyConfig::paper_default();
  c.io_cache_bytes = c.block_size - 1;
  EXPECT_THROW(StorageTopology{c}, std::invalid_argument);
  c = TopologyConfig::paper_default();
  c.block_size = 0;
  EXPECT_THROW(StorageTopology{c}, std::invalid_argument);
}

TEST(StorageTopologyTest, DescribeMentionsNodeCounts) {
  const StorageTopology topo(TopologyConfig::paper_default());
  const std::string s = topo.describe();
  EXPECT_NE(s.find("(64, 16, 4)"), std::string::npos);
}

}  // namespace
}  // namespace flo::storage
