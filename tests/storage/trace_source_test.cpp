#include "storage/trace_source.hpp"

#include <gtest/gtest.h>

#include "storage/simulator.hpp"

namespace flo::storage {
namespace {

TraceProgram two_phase_trace() {
  TraceProgram trace;
  trace.file_blocks = {8};
  PhaseTrace first;
  first.repeat = 3;
  first.per_thread = {{{0, 0, 4, false}, {0, 1, 4, false}},
                      {{0, 2, 4, false}, {0, 3, 4, true}}};
  PhaseTrace second;
  second.per_thread = {{{0, 7, 1, false}}};
  trace.phases = {first, second};
  return trace;
}

StorageTopology tiny_topology() {
  TopologyConfig c;
  c.compute_nodes = 2;
  c.io_nodes = 1;
  c.storage_nodes = 1;
  c.block_size = 64;
  c.io_cache_bytes = 128;
  c.storage_cache_bytes = 256;
  return StorageTopology(c);
}

TEST(MaterializedTraceSourceTest, MirrorsTheTraceProgramStructure) {
  const auto trace = two_phase_trace();
  const MaterializedTraceSource source(trace);
  EXPECT_EQ(source.phase_count(), 2u);
  EXPECT_EQ(source.phase_repeat(0), 3u);
  EXPECT_EQ(source.phase_repeat(1), 1u);
  // thread_count is the max stream count over phases.
  EXPECT_EQ(source.thread_count(), 2u);
  EXPECT_EQ(source.file_blocks(), trace.file_blocks);
}

TEST(MaterializedTraceSourceTest, CursorsReplayTheStoredEvents) {
  const auto trace = two_phase_trace();
  const MaterializedTraceSource source(trace);
  for (std::size_t phase = 0; phase < trace.phases.size(); ++phase) {
    const auto& per_thread = trace.phases[phase].per_thread;
    for (std::uint32_t t = 0; t < source.thread_count(); ++t) {
      auto cursor = source.open(phase, t);
      std::vector<AccessEvent> events;
      AccessEvent ev;
      while (cursor->next(ev)) events.push_back(ev);
      if (t < per_thread.size()) {
        EXPECT_EQ(events, per_thread[t]);
      } else {
        // Threads past a phase's stream count get empty cursors.
        EXPECT_TRUE(events.empty());
      }
    }
  }
}

TEST(MaterializedTraceSourceTest, ExhaustedCursorStaysExhausted) {
  const auto trace = two_phase_trace();
  const MaterializedTraceSource source(trace);
  auto cursor = source.open(1, 0);
  AccessEvent ev;
  ASSERT_TRUE(cursor->next(ev));
  EXPECT_FALSE(cursor->next(ev));
  const AccessEvent before = ev;
  EXPECT_FALSE(cursor->next(ev));
  // next() at end of stream leaves `out` untouched.
  EXPECT_EQ(ev, before);
}

TEST(SimulatorTraceSourceTest, SourceOverloadMatchesMaterializedOverload) {
  const auto trace = two_phase_trace();
  const auto topology = tiny_topology();
  const std::vector<NodeId> io{0, 0};
  HierarchySimulator a(topology, PolicyKind::kLruInclusive, io);
  HierarchySimulator b(topology, PolicyKind::kLruInclusive, io);
  const auto direct = a.run(trace);
  const auto adapted = b.run(MaterializedTraceSource(trace));
  EXPECT_EQ(direct, adapted);
}

TEST(SimulatorTraceSourceTest, RejectsMoreStreamsThanThreads) {
  TraceProgram trace = two_phase_trace();
  trace.phases[0].per_thread.push_back({{0, 4, 1, false}});  // third stream
  HierarchySimulator sim(tiny_topology(), PolicyKind::kLruInclusive, {0, 0});
  EXPECT_THROW(sim.run(trace), std::invalid_argument);
}

}  // namespace
}  // namespace flo::storage
