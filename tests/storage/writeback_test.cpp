#include <gtest/gtest.h>

#include "storage/sim_core.hpp"
#include "storage/simulator.hpp"

namespace flo::storage {
namespace {

TopologyConfig wb_config(bool model_writes) {
  TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = 2 * c.block_size;
  c.storage_cache_bytes = 4 * c.block_size;
  c.model_writes = model_writes;
  return c;
}

std::vector<NodeId> io_map() { return {0, 0, 1, 1}; }

TraceProgram write_scan(std::uint64_t blocks, bool writes) {
  TraceProgram trace;
  trace.file_blocks = {blocks + 8};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    phase.per_thread[0].push_back({0, b, 1, writes});
  }
  trace.phases.push_back(std::move(phase));
  return trace;
}

TEST(WritebackTest, DisabledByDefaultWritesBehaveLikeReads) {
  const StorageTopology topo(wb_config(false));
  HierarchySimulator reader(topo, PolicyKind::kLruInclusive, io_map());
  HierarchySimulator writer(topo, PolicyKind::kLruInclusive, io_map());
  const auto r = reader.run(write_scan(12, /*writes=*/false));
  const auto w = writer.run(write_scan(12, /*writes=*/true));
  EXPECT_EQ(r.exec_time, w.exec_time);
  EXPECT_EQ(w.writebacks, 0u);
  EXPECT_EQ(w.disk_writes, 0u);
}

TEST(WritebackTest, DirtyEvictionsShipDown) {
  const StorageTopology topo(wb_config(true));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, io_map());
  // 12 written blocks stream through a 2-block I/O cache: 10 dirty
  // evictions ship down to the 4-block storage cache, whose own dirty
  // evictions reach the disk.
  const auto result = sim.run(write_scan(12, /*writes=*/true));
  EXPECT_GE(result.writebacks, 10u);
  EXPECT_GT(result.disk_writes, 0u);
}

TEST(WritebackTest, CleanEvictionsAreFree) {
  const StorageTopology topo(wb_config(true));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, io_map());
  const auto result = sim.run(write_scan(12, /*writes=*/false));
  EXPECT_EQ(result.writebacks, 0u);
  EXPECT_EQ(result.disk_writes, 0u);
}

TEST(WritebackTest, WriteTrafficCostsMoreThanReadTraffic) {
  const StorageTopology topo(wb_config(true));
  HierarchySimulator reader(topo, PolicyKind::kLruInclusive, io_map());
  HierarchySimulator writer(topo, PolicyKind::kLruInclusive, io_map());
  const auto r = reader.run(write_scan(32, false));
  const auto w = writer.run(write_scan(32, true));
  EXPECT_GT(w.exec_time, r.exec_time);
}

// Inside the event≡clock envelope (one thread, 1/1/1 chain, prefetch off)
// so both cores must agree bit-exactly on the flush accounting.
TopologyConfig flush_config() {
  TopologyConfig c;
  c.compute_nodes = 1;
  c.io_nodes = 1;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = 2 * c.block_size;
  c.storage_cache_bytes = 4 * c.block_size;
  c.prefetch_depth = 0;
  c.model_writes = true;
  return c;
}

SimulationResult run_flush(const TraceProgram& trace, SimCoreKind core) {
  const StorageTopology topo(flush_config());
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, {0});
  sim.set_core(core);
  return sim.run(trace);
}

TEST(WritebackTest, TrailingWritebackChargedAtEndOfRun) {
  // A trace that ENDS with a write leaves its last dirty storage eviction
  // deferred in pending_writeback_cost_; the end-of-run flush must charge
  // it. The oracle trace appends one guaranteed I/O hit (re-reading the
  // just-written block), whose service charges any pending write-backs the
  // old way — so post-fix the two traces must agree on disk_writes.
  const TraceProgram final_write = write_scan(12, /*writes=*/true);
  TraceProgram with_flush_read = write_scan(12, /*writes=*/true);
  with_flush_read.phases[0].per_thread[0].push_back({0, 11, 1, false});

  const SimulationResult a = run_flush(final_write, SimCoreKind::kClock);
  const SimulationResult b = run_flush(with_flush_read, SimCoreKind::kClock);
  EXPECT_GT(a.disk_writes, 0u);
  EXPECT_EQ(a.disk_writes, b.disk_writes)
      << "trailing write-back dropped by the write-final trace";
  // The flush also charges the deferred cost into total time: the
  // write-final run can cost at most the flush-read run (which adds a
  // strictly positive hit service on top).
  EXPECT_LT(a.exec_time, b.exec_time);

  // Clock ≡ event parity on the flushed run.
  const SimulationResult e = run_flush(final_write, SimCoreKind::kEvent);
  EXPECT_EQ(e.disk_writes, a.disk_writes);
  EXPECT_EQ(e.writebacks, a.writebacks);
  EXPECT_EQ(e.disk_reads, a.disk_reads);
  EXPECT_EQ(e.accesses, a.accesses);
  EXPECT_NEAR(e.exec_time, a.exec_time, 1e-9 * a.exec_time);
}

TEST(WritebackTest, RewritingResidentBlockStaysDirtyOnce) {
  const StorageTopology topo(wb_config(true));
  HierarchySimulator sim(topo, PolicyKind::kLruInclusive, io_map());
  TraceProgram trace;
  trace.file_blocks = {16};
  PhaseTrace phase;
  phase.per_thread.resize(1);
  // Write the same block repeatedly, then flush it out with two reads.
  for (int i = 0; i < 5; ++i) phase.per_thread[0].push_back({0, 0, 1, true});
  phase.per_thread[0].push_back({0, 1, 1, false});
  phase.per_thread[0].push_back({0, 2, 1, false});
  phase.per_thread[0].push_back({0, 3, 1, false});
  trace.phases.push_back(std::move(phase));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.writebacks, 1u);  // block 0 shipped down exactly once
}

}  // namespace
}  // namespace flo::storage
