#include "testing/emit.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "testing/generator.hpp"

namespace flo::testing {
namespace {

TEST(Emit, RoundTripsRandomProgramsThroughTheParser) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    const ir::Program program = random_program(rng);
    const std::string text = emit_flo(program);
    ir::Program reparsed;
    ASSERT_NO_THROW(reparsed = ir::parse_program(text))
        << "seed " << seed << "\n" << text;
    EXPECT_EQ(first_difference(program, reparsed), "")
        << "seed " << seed << "\n" << text;
  }
}

TEST(Emit, RendersSignsAndCoefficients) {
  const ir::Program program = ir::parse_program(
      "program signs\n"
      "array A 40 8\n"
      "nest n parallel=2 repeat=3 {\n"
      "  for i1 = -2..5\n"
      "  for i2 = 0..7\n"
      "  read  A[2*i1-i2+11, i2]\n"
      "  write A[-2*i1+20, -i2+7]\n"
      "}\n");
  const std::string text = emit_flo(program);
  EXPECT_NE(text.find("parallel=2"), std::string::npos);
  EXPECT_NE(text.find("repeat=3"), std::string::npos);
  EXPECT_NE(text.find("for i1 = -2..5"), std::string::npos);
  EXPECT_NE(text.find("2*i1-i2+11"), std::string::npos);
  EXPECT_TRUE(programs_equal(program, ir::parse_program(text)));
}

TEST(Emit, ZeroRowRendersAsConstantZero) {
  // A reference row with no terms and no offset must still parse (as "0").
  const ir::Program program = ir::parse_program(
      "program zero\n"
      "array A 4 4\n"
      "nest n parallel=1 {\n"
      "  for i1 = 0..3\n"
      "  read A[i1, 0]\n"
      "}\n");
  EXPECT_TRUE(programs_equal(program, ir::parse_program(emit_flo(program))));
}

TEST(Emit, FirstDifferenceReportsTheEditedField) {
  util::Rng rng(7);
  const ir::Program a = random_program(rng);
  EXPECT_EQ(first_difference(a, a), "");
  EXPECT_TRUE(programs_equal(a, a));

  util::Rng rng2(8);
  const ir::Program b = random_program(rng2);
  // Structurally different programs must produce a non-empty diff in at
  // least one direction (they could coincide only by colliding samples).
  if (!programs_equal(a, b)) {
    EXPECT_NE(first_difference(a, b), "");
  }

  const ir::Program x = ir::parse_program(
      "program p\narray A 8\nnest n parallel=1 {\n  for i1 = 0..7\n"
      "  read A[i1]\n}\n");
  const ir::Program y = ir::parse_program(
      "program p\narray A 8\nnest n parallel=1 repeat=2 {\n  for i1 = 0..7\n"
      "  read A[i1]\n}\n");
  EXPECT_NE(first_difference(x, y).find("nest #0"), std::string::npos);
}

}  // namespace
}  // namespace flo::testing
