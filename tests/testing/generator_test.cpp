#include "testing/generator.hpp"

#include <gtest/gtest.h>

#include "ir/validate.hpp"
#include "storage/topology.hpp"
#include "testing/emit.hpp"

namespace flo::testing {
namespace {

TEST(Generator, SameSeedReproducesTheSameCase) {
  util::Rng a(42), b(42);
  const FuzzCase x = random_case(a);
  const FuzzCase y = random_case(b);
  EXPECT_TRUE(programs_equal(x.program, y.program));
  EXPECT_EQ(x.system.describe(), y.system.describe());
}

TEST(Generator, ProgramsAreValidAcrossManySeeds) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    util::Rng rng(seed);
    // random_program throws std::logic_error if ir::validate rejects its
    // output; re-validate anyway so a silent contract change is caught.
    const ir::Program program = random_program(rng);
    EXPECT_TRUE(ir::validate(program).empty()) << "seed " << seed;
    EXPECT_FALSE(program.nests().empty());
    EXPECT_FALSE(program.arrays().empty());
  }
}

TEST(Generator, SystemsConstructValidTopologies) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    util::Rng rng(seed);
    const SampledSystem system = random_system(rng);
    EXPECT_EQ(system.threads, system.config.compute_nodes) << "seed " << seed;
    // The topology constructor enforces every structural invariant
    // (divisibility, cache >= block, fault plan bounds).
    EXPECT_NO_THROW(storage::StorageTopology probe(system.config))
        << "seed " << seed << ": " << system.describe();
  }
}

TEST(Generator, HugeTripProgramsExceed32Bits) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const ir::Program program = random_huge_trip_program(rng);
    ASSERT_EQ(program.nests().size(), 1u);
    const auto& nest = program.nests()[0];
    ASSERT_EQ(nest.depth(), 2u);
    const auto& inner = nest.iterations().bound(1);
    EXPECT_GT(inner.upper - inner.lower + 1, std::int64_t{1} << 32);
    // The inner column must be zero for every reference (stride-0), so
    // the walker merges the whole inner trip into single events.
    for (const auto& ref : nest.references()) {
      for (std::size_t d = 0; d < ref.map.access_matrix().rows(); ++d) {
        EXPECT_EQ(ref.map.access_matrix().at(d, 1), 0);
      }
    }
  }
}

TEST(Generator, RespectsStructuralLimits) {
  GeneratorOptions options;
  options.max_arrays = 1;
  options.max_nests = 1;
  options.max_depth = 2;
  options.max_trip = 4;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed);
    const ir::Program program = random_program(rng, options);
    EXPECT_EQ(program.arrays().size(), 1u);
    EXPECT_EQ(program.nests().size(), 1u);
    EXPECT_LE(program.nests()[0].depth(), 2u);
    for (const auto& bound : program.nests()[0].iterations().bounds()) {
      EXPECT_LE(bound.upper - bound.lower + 1, 4);
    }
  }
}

}  // namespace
}  // namespace flo::testing
