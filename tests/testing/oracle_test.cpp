#include "testing/oracles.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testing/generator.hpp"

namespace flo::testing {
namespace {

TEST(Oracles, RegistryHoldsTheDocumentedSet) {
  const auto& oracles = all_oracles();
  ASSERT_EQ(oracles.size(), 13u);
  const char* expected[] = {
      "parse-roundtrip",  "parse-total",        "count-conservation",
      "stream-vs-eager",  "extent-equivalence", "event-vs-clock",
      "tenant-isolation", "qos-neutrality",     "layout-bijection",
      "solver-agreement", "engine-workers",     "wire-roundtrip",
      "conversion-roundtrip"};
  for (std::size_t i = 0; i < oracles.size(); ++i) {
    EXPECT_EQ(oracles[i].name, expected[i]);
    EXPECT_FALSE(oracles[i].description.empty());
  }
  // The closed-form oracles are the only ones a huge-trip case may run.
  EXPECT_FALSE(oracles[0].element_walk);
  EXPECT_FALSE(oracles[1].element_walk);
  EXPECT_FALSE(oracles[2].element_walk);
  EXPECT_TRUE(oracles[3].element_walk);
}

TEST(Oracles, GlobSelection) {
  EXPECT_EQ(select_oracles("*").size(), all_oracles().size());
  EXPECT_EQ(select_oracles("parse-*").size(), 2u);
  EXPECT_EQ(select_oracles("wire-roundtrip").size(), 1u);
  EXPECT_EQ(select_oracles("event-vs-clock").size(), 1u);
  EXPECT_EQ(select_oracles("*-roundtrip").size(), 3u);
  EXPECT_TRUE(select_oracles("no-such-oracle").empty());
}

TEST(Oracles, AllOraclesHoldOnGeneratedCases) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    util::Rng rng(seed);
    const FuzzCase fuzz_case = random_case(rng);
    for (const Oracle& oracle : all_oracles()) {
      const auto failure = run_oracle(oracle, fuzz_case);
      EXPECT_FALSE(failure) << "seed " << seed << " oracle " << oracle.name
                            << ": " << failure.value_or("");
    }
  }
}

TEST(Oracles, ClosedFormOraclesHoldOnHugeCases) {
  for (std::uint64_t seed = 200; seed < 203; ++seed) {
    util::Rng rng(seed);
    const FuzzCase fuzz_case = random_case(rng, /*huge=*/true);
    for (const Oracle& oracle : all_oracles()) {
      if (oracle.element_walk) continue;
      const auto failure = run_oracle(oracle, fuzz_case);
      EXPECT_FALSE(failure) << "seed " << seed << " oracle " << oracle.name
                            << ": " << failure.value_or("");
    }
  }
}

TEST(Oracles, RunOracleTranslatesEscapedExceptions) {
  Oracle throwing{"throwing", "always throws", false,
                  [](const FuzzCase&) -> std::optional<std::string> {
                    throw std::runtime_error("boom");
                  }};
  util::Rng rng(1);
  const FuzzCase fuzz_case = random_case(rng);
  const auto failure = run_oracle(throwing, fuzz_case);
  ASSERT_TRUE(failure);
  EXPECT_NE(failure->find("boom"), std::string::npos);
}

}  // namespace
}  // namespace flo::testing
