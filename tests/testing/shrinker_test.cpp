#include "testing/shrinker.hpp"

#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "ir/validate.hpp"
#include "testing/emit.hpp"

namespace flo::testing {
namespace {

FuzzCase sample_case(std::uint64_t seed) {
  util::Rng rng(seed);
  GeneratorOptions options;
  options.max_nests = 2;
  options.max_refs = 3;
  return random_case(rng, false, options);
}

// A synthetic invariant violation: "fails" whenever the first nest's trip
// count exceeds 8. The shrinker must drive the program down toward that
// boundary while every intermediate candidate keeps failing.
Oracle trip_oracle() {
  return {"synthetic-trip", "first nest trip > 8", false,
          [](const FuzzCase& fc) -> std::optional<std::string> {
            if (fc.program.nests()[0].iterations().total_iterations() > 8) {
              return "trip too large";
            }
            return std::nullopt;
          }};
}

TEST(Shrinker, PassingCaseIsReturnedUnchanged) {
  const FuzzCase fuzz_case = sample_case(3);
  Oracle never{"never", "never fails", false,
               [](const FuzzCase&) { return std::optional<std::string>{}; }};
  const ShrinkResult result = shrink_case(never, fuzz_case);
  EXPECT_TRUE(result.failure.empty());
  EXPECT_EQ(result.attempts, 0u);
  EXPECT_TRUE(programs_equal(result.minimized.program, fuzz_case.program));
}

TEST(Shrinker, MinimizesWhileThePropertyStillFails) {
  // Find a sampled case the synthetic oracle rejects.
  const Oracle oracle = trip_oracle();
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FuzzCase fuzz_case = sample_case(seed);
    if (!run_oracle(oracle, fuzz_case)) continue;

    const ShrinkResult result = shrink_case(oracle, fuzz_case);
    // Still failing, still valid, and at the greedy boundary: halving any
    // loop of the first nest again would drop the trip to <= 8.
    EXPECT_FALSE(result.failure.empty());
    EXPECT_TRUE(ir::validate(result.minimized.program).empty());
    const auto& nest = result.minimized.program.nests()[0];
    EXPECT_GT(nest.iterations().total_iterations(), 8);
    EXPECT_LE(nest.iterations().total_iterations(),
              fuzz_case.program.nests()[0].iterations().total_iterations());
    // System knobs are irrelevant to this oracle, so they shrink to the
    // simplest sampled system: one node per layer, no faults.
    EXPECT_EQ(result.minimized.system.threads, 1u);
    EXPECT_FALSE(result.minimized.system.config.fault.enabled);
    return;
  }
  FAIL() << "no sampled case violated the synthetic trip property";
}

TEST(Shrinker, ReproIsParseableAndCarriesTheHeader) {
  const Oracle oracle = trip_oracle();
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FuzzCase fuzz_case = sample_case(seed);
    const auto failure = run_oracle(oracle, fuzz_case);
    if (!failure) continue;
    const std::string repro =
        render_repro(oracle, fuzz_case, seed, *failure);
    EXPECT_NE(repro.find("synthetic-trip"), std::string::npos);
    EXPECT_NE(repro.find("# system:"), std::string::npos);
    // Comment lines must not break parseability of the repro file.
    EXPECT_NO_THROW((void)ir::parse_program(repro));
    return;
  }
  FAIL() << "no sampled case violated the synthetic trip property";
}

TEST(Shrinker, RespectsTheAttemptBudget) {
  const Oracle oracle = trip_oracle();
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const FuzzCase fuzz_case = sample_case(seed);
    if (!run_oracle(oracle, fuzz_case)) continue;
    ShrinkOptions options;
    options.max_attempts = 5;
    const ShrinkResult result = shrink_case(oracle, fuzz_case, options);
    EXPECT_LE(result.attempts, 5u);
    return;
  }
  FAIL() << "no sampled case violated the synthetic trip property";
}

}  // namespace
}  // namespace flo::testing
