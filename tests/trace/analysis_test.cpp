#include "trace/analysis.hpp"

#include <gtest/gtest.h>

namespace flo::trace {
namespace {

storage::TraceProgram two_thread_trace() {
  storage::TraceProgram trace;
  trace.file_blocks = {32};
  storage::PhaseTrace phase;
  phase.repeat = 2;
  phase.per_thread.resize(2);
  // Thread 0 hammers blocks 0..3; thread 1 touches 16..19 once each.
  for (int rep = 0; rep < 4; ++rep) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      phase.per_thread[0].push_back({0, b, 1});
    }
  }
  for (std::uint64_t b = 16; b < 20; ++b) {
    phase.per_thread[1].push_back({0, b, 1});
  }
  trace.phases.push_back(std::move(phase));
  return trace;
}

TEST(ProfileRangeHintsTest, DensityReflectsAccessCounts) {
  const auto hints = profile_range_hints(two_thread_trace(),
                                         /*segment_blocks=*/4);
  ASSERT_EQ(hints.size(), 2u);
  // Sorted by (file, begin).
  EXPECT_EQ(hints[0].begin_block, 0u);
  EXPECT_EQ(hints[0].end_block, 4u);
  EXPECT_EQ(hints[1].begin_block, 16u);
  // Thread 0's segment is 8x denser (4 reps in trace x 2 phase repeats
  // vs 1 x 2).
  EXPECT_DOUBLE_EQ(hints[0].accesses_per_block, 8.0);
  EXPECT_DOUBLE_EQ(hints[1].accesses_per_block, 2.0);
}

TEST(ProfileRangeHintsTest, SegmentsClampToFileEnd) {
  storage::TraceProgram trace;
  trace.file_blocks = {10};
  storage::PhaseTrace phase;
  phase.per_thread.resize(1);
  phase.per_thread[0].push_back({0, 9, 1});
  trace.phases.push_back(std::move(phase));
  const auto hints = profile_range_hints(trace, 4);
  ASSERT_EQ(hints.size(), 1u);
  EXPECT_EQ(hints[0].begin_block, 8u);
  EXPECT_EQ(hints[0].end_block, 10u);
}

TEST(ProfileRangeHintsTest, ZeroSegmentRejected) {
  EXPECT_THROW(profile_range_hints(two_thread_trace(), 0),
               std::invalid_argument);
}

TEST(ProfileRangeHintsTest, EmptyTraceYieldsNoHints) {
  storage::TraceProgram trace;
  trace.file_blocks = {8};
  EXPECT_TRUE(profile_range_hints(trace, 4).empty());
}

TEST(FootprintStatsTest, DistinctBlocksPerThread) {
  const auto stats = footprint_stats(two_thread_trace(), 2);
  ASSERT_EQ(stats.distinct_blocks.size(), 2u);
  EXPECT_EQ(stats.distinct_blocks[0], 4u);
  EXPECT_EQ(stats.distinct_blocks[1], 4u);
  EXPECT_DOUBLE_EQ(stats.mean_distinct(), 4.0);
  EXPECT_EQ(stats.max_distinct(), 4u);
  // 16 + 4 stored events, x2 phase repeats.
  EXPECT_EQ(stats.total_requests, 40u);
}

TEST(FootprintStatsTest, EmptyTrace) {
  storage::TraceProgram trace;
  const auto stats = footprint_stats(trace, 3);
  EXPECT_EQ(stats.distinct_blocks.size(), 3u);
  EXPECT_EQ(stats.mean_distinct(), 0.0);
  EXPECT_EQ(stats.max_distinct(), 0u);
}

}  // namespace
}  // namespace flo::trace
