#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "layout/canonical.hpp"

namespace flo::trace {
namespace {

storage::StorageTopology tiny_topology() {
  storage::TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 64;  // 8 elements
  c.io_cache_bytes = 512;
  c.storage_cache_bytes = 1024;
  return storage::StorageTopology(c);
}

ir::Program row_scan_program(std::int64_t n = 16, std::int64_t repeat = 1) {
  return ir::ProgramBuilder("p")
      .array("A", {n, n})
      .nest("scan", {{0, n - 1}, {0, n - 1}}, 0, repeat)
      .read("A", {{1, 0}, {0, 1}})
      .done()
      .build();
}

TEST(GeneratorTest, SequentialScanCoalescesToBlocks) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const auto trace =
      generate_trace(p, schedule, layouts, tiny_topology());
  ASSERT_EQ(trace.phases.size(), 1u);
  ASSERT_EQ(trace.phases[0].per_thread.size(), 4u);
  // Each thread scans 4 rows of 16 elements = 64 elements = 8 blocks.
  for (const auto& thread_trace : trace.phases[0].per_thread) {
    EXPECT_EQ(thread_trace.size(), 8u);
    std::uint32_t elements = 0;
    for (const auto& e : thread_trace) elements += e.element_count;
    EXPECT_EQ(elements, 64u);
  }
}

TEST(GeneratorTest, ThreadsTouchDisjointRowBlocks) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const auto trace = generate_trace(p, schedule, layouts, tiny_topology());
  // Thread t scans rows [4t, 4t+4): blocks 8t..8t+7.
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (const auto& e : trace.phases[0].per_thread[t]) {
      EXPECT_GE(e.block, 8ull * t);
      EXPECT_LT(e.block, 8ull * (t + 1));
    }
  }
}

TEST(GeneratorTest, TransposedSweepDoesNotCoalesce) {
  const auto p = ir::ProgramBuilder("p")
                     .array("A", {16, 16})
                     .nest("sweep", {{0, 15}, {0, 15}}, 0)
                     .read("A", {{0, 1}, {1, 0}})
                     .done()
                     .build();
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const auto trace = generate_trace(p, schedule, layouts, tiny_topology());
  // Column sweep: each access lands in a different row block (rows are 2
  // blocks long, elements 8 per block): 4 cols x 16 rows = 64 requests.
  EXPECT_EQ(trace.phases[0].per_thread[0].size(), 64u);
}

TEST(GeneratorTest, RepeatCarriedOnPhase) {
  const auto p = row_scan_program(16, /*repeat=*/5);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const auto trace = generate_trace(p, schedule, layouts, tiny_topology());
  EXPECT_EQ(trace.phases[0].repeat, 5u);
}

TEST(GeneratorTest, FileBlocksDerivedFromLayout) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const auto trace = generate_trace(p, schedule, layouts, tiny_topology());
  // 256 elements * 8 B / 64 B = 32 blocks.
  ASSERT_EQ(trace.file_blocks.size(), 1u);
  EXPECT_EQ(trace.file_blocks[0], 32u);
}

TEST(GeneratorTest, MultipleReferencesInterleave) {
  const auto p = ir::ProgramBuilder("p")
                     .array("A", {16, 16})
                     .array("B", {16, 16})
                     .nest("n", {{0, 15}, {0, 15}}, 0)
                     .read("A", {{1, 0}, {0, 1}})
                     .read("B", {{1, 0}, {0, 1}})
                     .done()
                     .build();
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const auto trace = generate_trace(p, schedule, layouts, tiny_topology());
  // Alternating files defeat coalescing: one request per element per ref.
  const auto& events = trace.phases[0].per_thread[0];
  EXPECT_EQ(events.size(), 128u);
  EXPECT_EQ(events[0].file, 0u);
  EXPECT_EQ(events[1].file, 1u);
}

TEST(GeneratorTest, CoalescingCanBeDisabled) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  TraceOptions options;
  options.coalesce = false;
  const auto trace =
      generate_trace(p, schedule, layouts, tiny_topology(), options);
  EXPECT_EQ(trace.phases[0].per_thread[0].size(), 64u);
}

TEST(GeneratorTest, ValidatesLayoutMap) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  layout::LayoutMap empty;
  EXPECT_THROW(generate_trace(p, schedule, empty, tiny_topology()),
               std::invalid_argument);
  layout::LayoutMap with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(generate_trace(p, schedule, with_null, tiny_topology()),
               std::invalid_argument);
}

TEST(GeneratorTest, LayoutChangesBlockStream) {
  const auto p = ir::ProgramBuilder("p")
                     .array("A", {16, 16})
                     .nest("sweep", {{0, 15}, {0, 15}}, 0)
                     .read("A", {{0, 1}, {1, 0}})
                     .done()
                     .build();
  const parallel::ParallelSchedule schedule(p, 4);
  layout::LayoutMap rm;
  rm.push_back(std::make_unique<layout::RowMajorLayout>(p.array(0).space()));
  layout::LayoutMap cm;
  cm.push_back(
      std::make_unique<layout::ColumnMajorLayout>(p.array(0).space()));
  const auto t_rm = generate_trace(p, schedule, rm, tiny_topology());
  const auto t_cm = generate_trace(p, schedule, cm, tiny_topology());
  // Column-major makes the column sweep sequential: far fewer requests.
  EXPECT_LT(t_cm.phases[0].per_thread[0].size(),
            t_rm.phases[0].per_thread[0].size());
}

}  // namespace
}  // namespace flo::trace
