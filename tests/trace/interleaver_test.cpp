#include "trace/interleaver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "storage/sim_core.hpp"
#include "storage/simulator.hpp"

namespace flo::trace {
namespace {

using storage::AccessEvent;
using storage::MaterializedTraceSource;
using storage::PhaseTrace;
using storage::SimCoreKind;
using storage::SimulationResult;
using storage::TraceProgram;

/// A small deterministic two-phase trace: `threads` streams sweeping
/// `blocks` blocks of one file, phase 0 repeated `repeat` times.
TraceProgram make_trace(std::uint32_t threads, std::uint64_t blocks,
                        std::uint32_t repeat) {
  TraceProgram trace;
  trace.file_blocks = {blocks};
  PhaseTrace sweep;
  sweep.repeat = repeat;
  sweep.per_thread.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    for (std::uint64_t b = 0; b < blocks; ++b) {
      sweep.per_thread[t].push_back({0, (b + t) % blocks, 2, false});
    }
  }
  trace.phases.push_back(sweep);
  PhaseTrace tail;
  tail.per_thread.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    tail.per_thread[t].push_back({0, t % blocks, 1, false});
  }
  trace.phases.push_back(std::move(tail));
  return trace;
}

storage::TopologyConfig small_topology(std::uint32_t compute) {
  storage::TopologyConfig c;
  c.compute_nodes = compute;
  c.io_nodes = compute;
  c.storage_nodes = 1;
  c.block_size = 2048;
  c.io_cache_bytes = 4 * c.block_size;
  c.storage_cache_bytes = 8 * c.block_size;
  c.prefetch_depth = 0;
  return c;
}

std::vector<AccessEvent> drain(const storage::TraceSource& source,
                               std::size_t phase, std::uint32_t thread) {
  std::vector<AccessEvent> out;
  const auto cursor = source.open(phase, thread);
  AccessEvent ev;
  while (cursor->next(ev)) out.push_back(ev);
  return out;
}

TEST(InterleaverTest, SingleTenantIsPurePassthrough) {
  const TraceProgram trace = make_trace(3, 6, 2);
  const MaterializedTraceSource inner(trace);
  for (const InterleavePolicy policy :
       {InterleavePolicy::kRoundRobin, InterleavePolicy::kSeededRandom}) {
    const InterleavedTraceSource one({&inner}, policy, 99);
    EXPECT_EQ(one.tenant_count(), 1u);
    EXPECT_EQ(one.thread_count(), inner.thread_count());
    EXPECT_EQ(one.file_base(0), 0u);
    EXPECT_EQ(one.file_blocks(), inner.file_blocks());
    // Repeats flatten into instances: phase 0 (repeat 2) + phase 1.
    EXPECT_EQ(one.phase_count(), 3u);
    for (std::uint32_t s = 0; s < one.thread_count(); ++s) {
      EXPECT_EQ(one.tenant_of_slot(s), 0u);
      EXPECT_EQ(one.origin_thread_of_slot(s), s);  // identity slot table
      EXPECT_EQ(drain(one, 0, s), drain(inner, 0, s));
      EXPECT_EQ(drain(one, 1, s), drain(inner, 0, s));  // the repeat
      EXPECT_EQ(drain(one, 2, s), drain(inner, 1, s));
    }
  }
}

TEST(InterleaverTest, SingleTenantRunIsBitIdenticalInBothCores) {
  const TraceProgram trace = make_trace(3, 6, 2);
  const MaterializedTraceSource inner(trace);
  const storage::StorageTopology topo(small_topology(3));
  const std::vector<storage::NodeId> io_map = {0, 1, 2};
  const auto run = [&](const storage::TraceSource& source, SimCoreKind core,
                       bool tenants) {
    storage::HierarchySimulator sim(topo, storage::PolicyKind::kLruInclusive,
                                    io_map);
    sim.set_core(core);
    if (tenants) {
      sim.set_tenants(std::vector<std::uint32_t>(source.thread_count(), 0), 1);
    }
    return sim.run(source);
  };
  for (const SimCoreKind core : {SimCoreKind::kClock, SimCoreKind::kEvent}) {
    const SimulationResult plain = run(inner, core, false);
    for (const InterleavePolicy policy :
         {InterleavePolicy::kRoundRobin, InterleavePolicy::kSeededRandom}) {
      const InterleavedTraceSource one({&inner}, policy, 7);
      SimulationResult wrapped = run(one, core, true);
      ASSERT_EQ(wrapped.tenants.size(), 1u);
      EXPECT_EQ(wrapped.tenants[0].accesses, wrapped.accesses);
      wrapped.tenants.clear();
      EXPECT_EQ(wrapped, plain);
    }
  }
}

TEST(InterleaverTest, RoundRobinInterleavesRaggedThreadCounts) {
  const TraceProgram a = make_trace(3, 4, 1);
  const TraceProgram b = make_trace(1, 4, 1);
  const MaterializedTraceSource sa(a);
  const MaterializedTraceSource sb(b);
  const InterleavedTraceSource both({&sa, &sb});
  ASSERT_EQ(both.thread_count(), 4u);
  // Rounds across tenants while threads remain: a/0, b/0, a/1, a/2.
  EXPECT_EQ(both.tenant_of_slot(0), 0u);
  EXPECT_EQ(both.origin_thread_of_slot(0), 0u);
  EXPECT_EQ(both.tenant_of_slot(1), 1u);
  EXPECT_EQ(both.origin_thread_of_slot(1), 0u);
  EXPECT_EQ(both.tenant_of_slot(2), 0u);
  EXPECT_EQ(both.origin_thread_of_slot(2), 1u);
  EXPECT_EQ(both.tenant_of_slot(3), 0u);
  EXPECT_EQ(both.origin_thread_of_slot(3), 2u);
  EXPECT_EQ(both.tenant_map(), (std::vector<std::uint32_t>{0, 1, 0, 0}));
}

TEST(InterleaverTest, FileNamespacesConcatenate) {
  const TraceProgram a = make_trace(1, 4, 1);  // one file, 4 blocks
  TraceProgram b = make_trace(1, 3, 1);
  b.file_blocks = {3, 5};  // two files
  const MaterializedTraceSource sa(a);
  const MaterializedTraceSource sb(b);
  const InterleavedTraceSource both({&sa, &sb});
  EXPECT_EQ(both.file_base(0), 0u);
  EXPECT_EQ(both.file_base(1), 1u);
  EXPECT_EQ(both.file_blocks(), (std::vector<std::uint64_t>{4, 3, 5}));
  // Tenant 1's events come back with their file ids offset; blocks and
  // counts untouched.
  for (std::uint32_t s = 0; s < both.thread_count(); ++s) {
    const std::uint32_t k = both.tenant_of_slot(s);
    const auto& origin = k == 0 ? sa : sb;
    auto expected = drain(origin, 0, both.origin_thread_of_slot(s));
    for (auto& ev : expected) ev.file += both.file_base(k);
    EXPECT_EQ(drain(both, 0, s), expected);
  }
}

TEST(InterleaverTest, SeededShuffleIsReproducible) {
  const TraceProgram a = make_trace(4, 4, 1);
  const TraceProgram b = make_trace(4, 4, 1);
  const MaterializedTraceSource sa(a);
  const MaterializedTraceSource sb(b);
  const InterleavedTraceSource x({&sa, &sb}, InterleavePolicy::kSeededRandom,
                                 42);
  const InterleavedTraceSource y({&sa, &sb}, InterleavePolicy::kSeededRandom,
                                 42);
  EXPECT_EQ(x.tenant_map(), y.tenant_map());
  for (std::uint32_t s = 0; s < x.thread_count(); ++s) {
    EXPECT_EQ(x.origin_thread_of_slot(s), y.origin_thread_of_slot(s));
    EXPECT_EQ(drain(x, 0, s), drain(y, 0, s));
  }
  // The shuffled table is still a permutation of the round-robin one.
  const InterleavedTraceSource rr({&sa, &sb});
  std::vector<std::uint32_t> shuffled = x.tenant_map();
  std::vector<std::uint32_t> ordered = rr.tenant_map();
  std::sort(shuffled.begin(), shuffled.end());
  std::sort(ordered.begin(), ordered.end());
  EXPECT_EQ(shuffled, ordered);
}

TEST(InterleaverTest, PerTenantCountersConserveAggregates) {
  const TraceProgram a = make_trace(2, 8, 2);
  const TraceProgram b = make_trace(2, 5, 1);
  const MaterializedTraceSource sa(a);
  const MaterializedTraceSource sb(b);
  const InterleavedTraceSource both({&sa, &sb});
  const storage::StorageTopology topo(small_topology(4));
  for (const SimCoreKind core : {SimCoreKind::kClock, SimCoreKind::kEvent}) {
    storage::HierarchySimulator sim(topo, storage::PolicyKind::kLruInclusive,
                                    {0, 1, 2, 3});
    sim.set_core(core);
    sim.set_tenants(both.tenant_map(), 2);
    const SimulationResult result = sim.run(both);
    ASSERT_EQ(result.tenants.size(), 2u);
    const auto& t0 = result.tenants[0];
    const auto& t1 = result.tenants[1];
    EXPECT_TRUE(t0.any());
    EXPECT_TRUE(t1.any());
    EXPECT_EQ(t0.accesses + t1.accesses, result.accesses);
    EXPECT_EQ(t0.elements + t1.elements, result.elements);
    EXPECT_EQ(t0.io_lookups + t1.io_lookups, result.io.lookups);
    EXPECT_EQ(t0.io_hits + t1.io_hits, result.io.hits);
    EXPECT_EQ(t0.storage_lookups + t1.storage_lookups,
              result.storage.lookups);
    EXPECT_EQ(t0.storage_hits + t1.storage_hits, result.storage.hits);
    EXPECT_EQ(t0.disk_reads + t1.disk_reads, result.disk_reads);
    EXPECT_EQ(t0.bytes_filled + t1.bytes_filled,
              result.io.bytes_filled + result.storage.bytes_filled);
  }
}

TEST(InterleaverTest, RejectsEmptyAndNullTenantLists) {
  EXPECT_THROW(InterleavedTraceSource({}), std::invalid_argument);
  EXPECT_THROW(InterleavedTraceSource({nullptr}), std::invalid_argument);
}

TEST(InterleaverTest, SetTenantsValidatesTheMap) {
  const storage::StorageTopology topo(small_topology(2));
  storage::HierarchySimulator sim(topo, storage::PolicyKind::kLruInclusive,
                                  {0, 1});
  EXPECT_THROW(sim.set_tenants({0, 2}, 2), std::invalid_argument);
  // A map shorter than the trace's thread count is rejected at run time.
  const TraceProgram trace = make_trace(2, 4, 1);
  const MaterializedTraceSource source(trace);
  sim.set_tenants({0}, 1);
  EXPECT_THROW(sim.run(source), std::invalid_argument);
}

}  // namespace
}  // namespace flo::trace
