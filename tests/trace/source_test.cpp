#include "trace/source.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "ir/builder.hpp"
#include "layout/canonical.hpp"
#include "trace/generator.hpp"
#include "workloads/suite.hpp"

namespace flo::trace {
namespace {

storage::StorageTopology tiny_topology() {
  storage::TopologyConfig c;
  c.compute_nodes = 4;
  c.io_nodes = 2;
  c.storage_nodes = 1;
  c.block_size = 64;  // 8 elements
  c.io_cache_bytes = 512;
  c.storage_cache_bytes = 1024;
  return storage::StorageTopology(c);
}

ir::Program row_scan_program(std::int64_t n = 16, std::int64_t repeat = 1) {
  return ir::ProgramBuilder("p")
      .array("A", {n, n})
      .nest("scan", {{0, n - 1}, {0, n - 1}}, 0, repeat)
      .read("A", {{1, 0}, {0, 1}})
      .done()
      .build();
}

std::vector<storage::AccessEvent> collect(const storage::TraceSource& source,
                                          std::size_t phase,
                                          std::uint32_t thread) {
  std::vector<storage::AccessEvent> events;
  auto cursor = source.open(phase, thread);
  storage::AccessEvent ev;
  while (cursor->next(ev)) events.push_back(ev);
  return events;
}

// Holds the streaming source to the eager generator's event streams for
// every (phase, thread) of `program`, comparing one event at a time.
void expect_matches_eager(const ir::Program& program,
                          const parallel::ParallelSchedule& schedule,
                          const layout::LayoutMap& layouts,
                          const storage::StorageTopology& topology,
                          const TraceOptions& options) {
  const auto eager = generate_trace(program, schedule, layouts, topology, options);
  const StreamingTraceSource source(program, schedule, layouts, topology,
                                    options);
  ASSERT_EQ(source.phase_count(), eager.phases.size());
  ASSERT_EQ(source.file_blocks(), eager.file_blocks);
  for (std::size_t phase = 0; phase < eager.phases.size(); ++phase) {
    EXPECT_EQ(source.phase_repeat(phase), eager.phases[phase].repeat);
    const auto& per_thread = eager.phases[phase].per_thread;
    ASSERT_GE(source.thread_count(), per_thread.size());
    for (std::uint32_t t = 0; t < source.thread_count(); ++t) {
      auto cursor = source.open(phase, t);
      storage::AccessEvent ev;
      std::size_t i = 0;
      const std::size_t expected =
          t < per_thread.size() ? per_thread[t].size() : 0;
      while (cursor->next(ev)) {
        ASSERT_LT(i, expected) << "phase " << phase << " thread " << t;
        ASSERT_EQ(ev, per_thread[t][i])
            << "phase " << phase << " thread " << t << " event " << i;
        ++i;
      }
      EXPECT_EQ(i, expected) << "phase " << phase << " thread " << t;
    }
  }
}

TEST(StreamingSourceTest, SequentialScanCoalescesToBlocks) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const StreamingTraceSource source(p, schedule, layouts, tiny_topology());
  ASSERT_EQ(source.phase_count(), 1u);
  ASSERT_EQ(source.thread_count(), 4u);
  // Each thread scans 4 rows of 16 elements = 64 elements = 8 blocks.
  for (std::uint32_t t = 0; t < 4; ++t) {
    const auto events = collect(source, 0, t);
    EXPECT_EQ(events.size(), 8u);
    std::uint32_t elements = 0;
    for (const auto& e : events) elements += e.element_count;
    EXPECT_EQ(elements, 64u);
  }
}

TEST(StreamingSourceTest, CoalescingCanBeDisabled) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  TraceOptions options;
  options.coalesce = false;
  const StreamingTraceSource source(p, schedule, layouts, tiny_topology(),
                                    options);
  // One event per element access, all with element_count 1.
  const auto events = collect(source, 0, 0);
  EXPECT_EQ(events.size(), 64u);
  for (const auto& e : events) EXPECT_EQ(e.element_count, 1u);
}

TEST(StreamingSourceTest, RepeatCarriedOnPhase) {
  const auto p = row_scan_program(16, /*repeat=*/5);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const StreamingTraceSource source(p, schedule, layouts, tiny_topology());
  EXPECT_EQ(source.phase_repeat(0), 5u);
}

TEST(StreamingSourceTest, ReopenedCursorReplaysIdenticalStream) {
  const auto p = row_scan_program(16, /*repeat=*/3);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const StreamingTraceSource source(p, schedule, layouts, tiny_topology());
  // Phase repeats re-open the cursor; every opening must yield the same
  // events (the simulator relies on this for its barrier replay).
  const auto first = collect(source, 0, 2);
  const auto second = collect(source, 0, 2);
  EXPECT_EQ(first, second);
}

TEST(StreamingSourceTest, ValidatesLayoutMap) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  layout::LayoutMap empty;
  EXPECT_THROW(
      StreamingTraceSource(p, schedule, empty, tiny_topology()),
      std::invalid_argument);
  layout::LayoutMap with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(
      StreamingTraceSource(p, schedule, with_null, tiny_topology()),
      std::invalid_argument);
}

// Golden test 1: a multi-phase, multi-reference workload from the suite
// must stream the exact event sequence the eager generator materializes,
// with coalescing both on and off.
TEST(StreamingSourceTest, GoldenMatchesEagerOnSuiteWorkloadSp) {
  const auto app = workloads::workload_by_name("sp");
  const storage::StorageTopology topology(
      storage::TopologyConfig::paper_default());
  const parallel::ParallelSchedule schedule(app.program, 64);
  const auto layouts = layout::default_layouts(app.program);
  for (const bool coalesce : {true, false}) {
    TraceOptions options;
    options.coalesce = coalesce;
    expect_matches_eager(app.program, schedule, layouts, topology, options);
  }
}

// Golden test 2: swim exercises the run-length batching fast path (single
// reference, linear layout, high repeat) — the riskiest streaming code.
TEST(StreamingSourceTest, GoldenMatchesEagerOnSuiteWorkloadSwim) {
  const auto app = workloads::workload_by_name("swim");
  const storage::StorageTopology topology(
      storage::TopologyConfig::paper_default());
  const parallel::ParallelSchedule schedule(app.program, 64);
  const auto layouts = layout::default_layouts(app.program);
  for (const bool coalesce : {true, false}) {
    TraceOptions options;
    options.coalesce = coalesce;
    expect_matches_eager(app.program, schedule, layouts, topology, options);
  }
}

// Acceptance: peak resident trace state is O(threads). A transposed sweep
// over a 2048x2048 array coalesces nothing, so the eager trace would hold
// ~4.2M events (>64 MiB); the streaming cursors for all 64 threads
// together must stay under 1 MiB.
TEST(StreamingSourceTest, ResidentStateStaysSmallWhereEagerWouldNot) {
  constexpr std::int64_t kN = 2048;
  const auto p = ir::ProgramBuilder("p")
                     .array("A", {kN, kN})
                     .nest("sweep", {{0, kN - 1}, {0, kN - 1}}, 0)
                     .read("A", {{0, 1}, {1, 0}})
                     .done()
                     .build();
  const storage::StorageTopology topology(
      storage::TopologyConfig::paper_default());
  const parallel::ParallelSchedule schedule(p, 64);
  const auto layouts = layout::default_layouts(p);
  const StreamingTraceSource source(p, schedule, layouts, topology);

  // What the eager path would materialize: count events without storing
  // them (the column sweep defeats coalescing, one event per element).
  std::uint64_t eager_events = 0;
  for (std::uint32_t t = 0; t < source.thread_count(); ++t) {
    auto cursor = source.open(0, t);
    storage::AccessEvent ev;
    while (cursor->next(ev)) ++eager_events;
  }
  const std::uint64_t eager_bytes =
      eager_events * sizeof(storage::AccessEvent);

  std::size_t streaming_bytes = 0;
  for (std::uint32_t t = 0; t < source.thread_count(); ++t) {
    streaming_bytes += source.cursor_state_bytes(0, t);
  }

  constexpr std::uint64_t kCap = 1 << 20;  // 1 MiB
  EXPECT_EQ(eager_events, static_cast<std::uint64_t>(kN) * kN);
  EXPECT_GT(eager_bytes, 32 * kCap);
  EXPECT_LT(streaming_bytes, kCap);
}

// Regression: the walker's run merging accumulates element counts in
// 64 bits. A stride-0 innermost dimension folds its entire trip count into
// one event; with a trip count above 2^32 the old uint32 accumulation
// silently wrapped (e.g. 2^32 + 1 became 1), collapsing the simulated
// compute time of the whole loop.
TEST(StreamingSourceTest, RunMergeElementCountSurvivesPastUint32) {
  constexpr std::int64_t kInner = (1ll << 32);  // trip count 2^32 + 1
  const auto p = ir::ProgramBuilder("p")
                     .array("A", {4})
                     .nest("hot", {{0, 3}, {0, kInner}}, 0)
                     .read("A", {{1, 0}})  // A[i]: inner dim has stride 0
                     .done()
                     .build();
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const StreamingTraceSource source(p, schedule, layouts, tiny_topology());
  // Each thread owns one outer iteration: one block, one merged event
  // covering every inner-loop access.
  const auto events = collect(source, 0, 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].element_count, (1ull << 32) + 1);
}

// The extent-emitting cursor folds ascending same-block runs into one
// event with run_blocks > 1; expanding those extents must reproduce the
// plain coalesced stream exactly.
TEST(StreamingSourceTest, ExtentStreamExpandsToCoalescedStream) {
  const auto p = row_scan_program(16);
  const parallel::ParallelSchedule schedule(p, 4);
  const auto layouts = layout::default_layouts(p);
  const StreamingTraceSource plain(p, schedule, layouts, tiny_topology());
  TraceOptions options;
  options.emit_extents = true;
  const StreamingTraceSource extents(p, schedule, layouts, tiny_topology(),
                                     options);
  for (std::uint32_t t = 0; t < 4; ++t) {
    const auto expected = collect(plain, 0, t);
    const auto merged = collect(extents, 0, t);
    // The sequential scan's 8 consecutive blocks fold into one extent.
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].run_blocks, 8u);
    std::vector<storage::AccessEvent> expanded;
    for (storage::AccessEvent ev : merged) {
      const std::uint32_t run = ev.run_blocks;
      ev.run_blocks = 1;
      for (std::uint32_t i = 0; i < run; ++i) {
        expanded.push_back(ev);
        ++ev.block;
      }
    }
    EXPECT_EQ(expanded, expected);
  }
}

// Acceptance: the simulator's output under the streaming trace source is
// bit-identical to the eager path on every existing workload, for both the
// default and the optimized layouts.
TEST(StreamingSourceTest, SimulationBitIdenticalToEagerAcrossSuite) {
  for (const auto& app : workloads::workload_suite()) {
    for (const auto scheme : {core::Scheme::kDefault,
                              core::Scheme::kInterNode}) {
      core::ExperimentConfig streaming;
      streaming.scheme = scheme;
      streaming.trace = core::TraceMode::kStreaming;
      core::ExperimentConfig eager = streaming;
      eager.trace = core::TraceMode::kEager;
      // The compile half is independent of the trace mode; share it so the
      // test only pays the optimizer once per (app, scheme) cell.
      const auto compiled = core::compile_experiment(app.program, streaming);
      const auto s = core::simulate_experiment(app.program, compiled, streaming);
      const auto e = core::simulate_experiment(app.program, compiled, eager);
      EXPECT_EQ(s, e) << app.name << " / " << core::scheme_name(scheme);
    }
  }
}

}  // namespace
}  // namespace flo::trace
