#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <unistd.h>

namespace flo::util {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name + "." + std::to_string(::getpid());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(AtomicFileTest, WritesAndOverwrites) {
  const std::string path = temp_path("atomic");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  atomic_write_file(path, "second, longer contents\n");
  EXPECT_EQ(slurp(path), "second, longer contents\n");
  atomic_write_file(path, "");  // truncation to empty is a valid write
  EXPECT_EQ(slurp(path), "");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, LeavesNoTempFileBehind) {
  const std::string path = temp_path("clean");
  atomic_write_file(path, "payload");
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  EXPECT_NE(::access(path.c_str(), F_OK), -1);
  EXPECT_EQ(::access(tmp.c_str(), F_OK), -1);
  std::remove(path.c_str());
}

TEST(AtomicFileTest, SurfacesUnwritableDestination) {
  // The temp sibling cannot be created inside a missing directory; the
  // failure must surface as std::system_error, not be swallowed.
  EXPECT_THROW(
      atomic_write_file(testing::TempDir() + "/no/such/dir/file", "x"),
      std::system_error);
}

TEST(AtomicFileTest, BinarySafeContents) {
  const std::string path = temp_path("binary");
  const std::string contents("a\0b\r\n\xff tail", 10);
  atomic_write_file(path, contents);
  EXPECT_EQ(slurp(path), contents);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flo::util
