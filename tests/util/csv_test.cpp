#include "util/csv.hpp"

#include <gtest/gtest.h>

namespace flo::util {
namespace {

TEST(CsvTest, BasicDocument) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3,4\n");
}

TEST(CsvTest, QuotesSpecialCells) {
  CsvWriter csv({"text"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  csv.add_row({"has\nnewline"});
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("\"has\nnewline\""), std::string::npos);
}

TEST(CsvTest, WidthMismatchThrows) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"x"}), std::invalid_argument);
}

TEST(CsvTest, EmptyHeadersThrow) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(CsvTest, WriteFileFailsOnBadPath) {
  CsvWriter csv({"a"});
  EXPECT_THROW(csv.write_file("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace flo::util
