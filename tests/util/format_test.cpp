#include "util/format.hpp"

#include <gtest/gtest.h>

namespace flo::util {
namespace {

TEST(FormatDurationTest, PaperStyle) {
  EXPECT_EQ(format_duration(201.0), "3 min 21 s");
  EXPECT_EQ(format_duration(104.0), "1 min 44 s");
  EXPECT_EQ(format_duration(530.0), "8 min 50 s");
}

TEST(FormatDurationTest, SubMinuteAndSubSecond) {
  EXPECT_EQ(format_duration(41.0), "41 s");
  EXPECT_EQ(format_duration(0.42), "0.42 s");
  EXPECT_EQ(format_duration(0.0), "0.00 s");
}

TEST(FormatDurationTest, Hours) {
  EXPECT_EQ(format_duration(3723.0), "1 h 2 min 3 s");
}

TEST(FormatDurationTest, Rounding) {
  EXPECT_EQ(format_duration(59.6), "1 min 00 s");
  EXPECT_EQ(format_duration(1.4), "1 s");
}

TEST(FormatDurationTest, NegativeClampsToZero) {
  EXPECT_EQ(format_duration(-5.0), "0.00 s");
}

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4 KiB");
  EXPECT_EQ(format_bytes(1ull << 20), "1 MiB");
  EXPECT_EQ(format_bytes(3ull << 30), "3 GiB");
}

TEST(FormatBytesTest, FractionalValues) {
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
}

TEST(FormatPercentTest, OneDecimal) {
  EXPECT_EQ(format_percent(0.237), "23.7%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
}

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(PaddingTest, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

}  // namespace
}  // namespace flo::util
