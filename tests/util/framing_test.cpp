// Length-prefixed framing over pipes: round trips, clean EOF, truncated
// streams, the max-frame guard, timeouts and cancellation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "util/framing.hpp"

namespace flo::util {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  int r() const { return fds[0]; }
  int w() const { return fds[1]; }
  void close_read() {
    if (fds[0] >= 0) ::close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(FramingTest, RoundTripsPayloads) {
  Pipe p;
  write_frame(p.w(), "hello frames");
  write_frame(p.w(), std::string("\x00\x01\xffwith binary\n bytes", 19));
  std::string payload;
  ASSERT_TRUE(read_frame(p.r(), payload, 1 << 20, 1000, 1000));
  EXPECT_EQ(payload, "hello frames");
  ASSERT_TRUE(read_frame(p.r(), payload, 1 << 20, 1000, 1000));
  EXPECT_EQ(payload, std::string("\x00\x01\xffwith binary\n bytes", 19));
}

TEST(FramingTest, EmptyPayloadIsAValidFrame) {
  Pipe p;
  write_frame(p.w(), "");
  std::string payload = "stale";
  ASSERT_TRUE(read_frame(p.r(), payload, 1 << 20, 1000, 1000));
  EXPECT_TRUE(payload.empty());
}

TEST(FramingTest, CleanEofAtFrameBoundaryReturnsFalse) {
  Pipe p;
  write_frame(p.w(), "last");
  p.close_write();
  std::string payload;
  ASSERT_TRUE(read_frame(p.r(), payload, 1 << 20, 1000, 1000));
  EXPECT_FALSE(read_frame(p.r(), payload, 1 << 20, 1000, 1000));
}

TEST(FramingTest, TruncatedStreamMidFrameThrows) {
  Pipe p;
  // A 100-byte promise with 3 bytes delivered, then EOF.
  const char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(p.w(), prefix, 4), 4);
  ASSERT_EQ(::write(p.w(), "abc", 3), 3);
  p.close_write();
  std::string payload;
  EXPECT_THROW(read_frame(p.r(), payload, 1 << 20, 1000, 1000), FramingError);
}

TEST(FramingTest, OversizedLengthPrefixThrowsBeforeAllocating) {
  Pipe p;
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(p.w(), prefix, 4), 4);
  std::string payload;
  try {
    read_frame(p.r(), payload, /*max_frame=*/4096, 1000, 1000);
    FAIL() << "expected FrameTooLarge";
  } catch (const FrameTooLarge& e) {
    EXPECT_EQ(e.declared(), 0xffffffffu);
  }
}

TEST(FramingTest, StalledFrameTimesOut) {
  Pipe p;
  const char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(p.w(), prefix, 4), 4);  // promise, never deliver
  std::string payload;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(read_frame(p.r(), payload, 1 << 20, 1000, /*frame=*/150),
               FramingTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(FramingTest, IdleTimeoutCoversTheFirstByte) {
  Pipe p;
  std::string payload;
  EXPECT_THROW(read_frame(p.r(), payload, 1 << 20, /*idle=*/100, 1000),
               FramingTimeout);
}

TEST(FramingTest, CancelFlagInterruptsABlockedReader) {
  Pipe p;
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    cancel.store(true);
  });
  std::string payload;
  EXPECT_THROW(
      read_frame(p.r(), payload, 1 << 20, /*idle=*/-1, -1, &cancel),
      FramingCancelled);
  canceller.join();
}

TEST(FramingTest, WriteToClosedReaderThrowsFramingError) {
  Pipe p;
  ::signal(SIGPIPE, SIG_IGN);
  p.close_read();
  EXPECT_THROW(write_frame(p.w(), "nobody listening"), FramingError);
}

}  // namespace
}  // namespace flo::util
