#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace flo::util {
namespace {

TEST(JsonEscapeTest, PlainTextPassesThrough) {
  EXPECT_EQ(json_escape("scenario-a_42.json"), "scenario-a_42.json");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("C:\\traces\\run"), "C:\\\\traces\\\\run");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscapeTest, CommonControlShortcuts) {
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("col\tcol"), "col\\tcol");
  EXPECT_EQ(json_escape("cr\rlf"), "cr\\rlf");
}

TEST(JsonEscapeTest, OtherControlsUseUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape(std::string("a\x1f" "b")), "a\\u001fb");
  EXPECT_EQ(json_escape(std::string("nul\0nul", 7)), "nul\\u0000nul");
}

TEST(JsonEscapeTest, HighBytesAreLeftIntact) {
  // Non-ASCII UTF-8 needs no escaping per RFC 8259; bytes >= 0x80 must not
  // be misclassified as controls by a signed-char comparison.
  const std::string utf8 = "caf\xc3\xa9";
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(JsonEscapeTest, HostileScenarioNameGolden) {
  // The kind of name that reaches JSONL sinks via scenario/key fields.
  const std::string hostile = "evil\"name\\with\nnewline\tand\x02 ctrl";
  EXPECT_EQ(json_escape(hostile),
            "evil\\\"name\\\\with\\nnewline\\tand\\u0002 ctrl");
}

}  // namespace
}  // namespace flo::util
