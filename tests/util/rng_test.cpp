#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace flo::util {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<std::uint32_t> out(64);
  rng.shuffle_indices(out.data(), out.size());
  std::set<std::uint32_t> values(out.begin(), out.end());
  EXPECT_EQ(values.size(), 64u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 63u);
}

TEST(RngTest, ShuffleDeterministic) {
  Rng a(9), b(9);
  std::vector<std::uint32_t> x(16), y(16);
  a.shuffle_indices(x.data(), x.size());
  b.shuffle_indices(y.data(), y.size());
  EXPECT_EQ(x, y);
}

TEST(SplitMixTest, AdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace flo::util
