#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace flo::util {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha |     1"), std::string::npos);
}

TEST(TableTest, DefaultAlignment) {
  Table t({"k", "v"});
  t.add_row({"x", "10"});
  t.add_row({"yy", "5"});
  const std::string out = t.to_string();
  // First column left-aligned, second right-aligned.
  EXPECT_NE(out.find("x  |"), std::string::npos);
  EXPECT_NE(out.find("|  5"), std::string::npos);
}

TEST(TableTest, CustomAlignment) {
  Table t({"a", "b"});
  t.set_alignment({Align::kRight, Align::kLeft});
  t.add_row({"1", "left"});
  t.add_row({"22", "l"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find(" 1 | left"), std::string::npos);
}

TEST(TableTest, WidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.set_alignment({Align::kLeft}), std::invalid_argument);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, StreamOperator) {
  Table t({"a"});
  t.add_row({"z"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace flo::util
