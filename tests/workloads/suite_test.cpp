#include "workloads/suite.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/validate.hpp"
#include "layout/partitioning.hpp"
#include "parallel/schedule.hpp"

namespace flo::workloads {
namespace {

TEST(SuiteTest, SixteenApplicationsInTable2Order) {
  const auto suite = workload_suite();
  ASSERT_EQ(suite.size(), 16u);
  const auto& names = workload_names();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, names[i]);
  }
}

TEST(SuiteTest, AllProgramsValidate) {
  for (const auto& app : workload_suite()) {
    const auto issues = ir::validate(app.program);
    EXPECT_TRUE(issues.empty())
        << app.name << ": " << (issues.empty() ? "" : issues.front());
  }
}

TEST(SuiteTest, GroupsMatchThePaper) {
  std::map<std::string, int> group;
  for (const auto& app : workload_suite()) group[app.name] = app.group;
  EXPECT_EQ(group["cc-ver-1"], 1);
  EXPECT_EQ(group["s3asim"], 1);
  EXPECT_EQ(group["twer"], 1);
  EXPECT_EQ(group["bt"], 2);
  EXPECT_EQ(group["mgrid"], 2);
  EXPECT_EQ(group["swim"], 3);
  EXPECT_EQ(group["sp"], 3);
}

TEST(SuiteTest, MasterSlaveFlagsMatchSection53) {
  // "cc-ver-2, afores and sar ... mostly implement a master-slave model".
  std::map<std::string, bool> ms;
  for (const auto& app : workload_suite()) ms[app.name] = app.master_slave;
  EXPECT_TRUE(ms["cc-ver-2"]);
  EXPECT_TRUE(ms["afores"]);
  EXPECT_TRUE(ms["sar"]);
  EXPECT_FALSE(ms["bt"]);
  EXPECT_FALSE(ms["swim"]);
}

TEST(SuiteTest, ArrayCountsMatchSection51) {
  // "ranges from 3 (in benchmark afores) to 17 (in benchmark twer)".
  std::size_t min_arrays = 1000, max_arrays = 0;
  std::string min_name, max_name;
  for (const auto& app : workload_suite()) {
    const std::size_t n = app.program.arrays().size();
    if (n < min_arrays) {
      min_arrays = n;
      min_name = app.name;
    }
    if (n > max_arrays) {
      max_arrays = n;
      max_name = app.name;
    }
  }
  EXPECT_EQ(min_name, "afores");
  EXPECT_EQ(min_arrays, 3u);
  EXPECT_EQ(max_name, "twer");
  EXPECT_EQ(max_arrays, 17u);
}

TEST(SuiteTest, AllS3asimArraysPartitionable) {
  // "we were able to optimize the layouts of all arrays in s3asim".
  const auto app = workload_by_name("s3asim");
  const parallel::ParallelSchedule schedule(app.program, 64);
  for (ir::ArrayId a = 0; a < app.program.arrays().size(); ++a) {
    const auto part = layout::partition_array(app.program, a, schedule);
    EXPECT_TRUE(part.partitioned)
        << "array " << app.program.array(a).name() << " not partitionable";
  }
}

TEST(SuiteTest, TwerHasConflictingReferences) {
  const auto app = workload_by_name("twer");
  const parallel::ParallelSchedule schedule(app.program, 64);
  // The conflicted field arrays can satisfy only one of two groups.
  const auto part = layout::partition_array(app.program, 0, schedule);
  ASSERT_TRUE(part.partitioned);
  EXPECT_EQ(part.total_groups, 2u);
  EXPECT_EQ(part.satisfied_groups, 1u);
}

TEST(SuiteTest, PaperRowsPopulated) {
  for (const auto& app : workload_suite()) {
    EXPECT_GT(app.paper.io_miss, 0.0) << app.name;
    EXPECT_GT(app.paper.storage_miss, 0.0) << app.name;
    EXPECT_GT(app.paper.norm_io_miss, 0.0) << app.name;
    EXPECT_STRNE(app.paper.exec_time, "") << app.name;
  }
}

TEST(SuiteTest, UnknownNameThrows) {
  EXPECT_THROW(workload_by_name("nope"), std::invalid_argument);
}

TEST(SuiteTest, ByNameMatchesSuiteEntry) {
  const auto direct = workload_by_name("swim");
  EXPECT_EQ(direct.group, 3);
  EXPECT_EQ(direct.program.name(), "swim");
}

TEST(SuiteTest, ProgramsAreDeterministic) {
  const auto a = workload_by_name("bt");
  const auto b = workload_by_name("bt");
  EXPECT_EQ(a.program.arrays().size(), b.program.arrays().size());
  EXPECT_EQ(a.program.nests().size(), b.program.nests().size());
  for (std::size_t n = 0; n < a.program.nests().size(); ++n) {
    EXPECT_EQ(a.program.nests()[n].reference_trip_count(),
              b.program.nests()[n].reference_trip_count());
  }
}

}  // namespace
}  // namespace flo::workloads
