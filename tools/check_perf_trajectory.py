#!/usr/bin/env python3
"""Tolerance-gated perf-trajectory check for bench_micro results.

Compares a fresh google-benchmark JSON file (--benchmark_format=json)
against a committed trajectory snapshot (results/trajectory/). Absolute
throughput depends on the runner, so the gate works on *within-run ratios*
— event core vs clock core blocks/sec, extent batching on vs off — which
are machine-independent: both sides of each ratio ran on the same machine
seconds apart.

Three kinds of gate:
  1. hard floors — invariants of the implementation (the event core's
     closed-form phase path must deliver >= 2x the clock extent path on
     the cache-less sequential grid);
  2. regression tolerance — each tracked ratio must stay within
     --tolerance (default 0.5, i.e. no worse than half) of the ratio
     recorded in the committed baseline snapshot;
  3. snapshot freshness (--require-fresh) — every committed snapshot is
     stamped (--stamp) with a fingerprint of the bench-visible sources;
     when the working tree's fingerprint no longer matches the latest
     snapshot's stamp, bench-visible code changed without a new snapshot
     and the gate fails. Pre-stamp snapshots only warn.

Exit status 0 when every gate holds, 1 otherwise.
"""

import argparse
import glob
import hashlib
import json
import os
import re
import sys

# (name, numerator benchmark, denominator benchmark, hard floor or None)
TRACKED_RATIOS = [
    ("sim_core_event_over_clock", "BM_SimCoreEvent", "BM_SimCoreClock", 2.0),
    ("extent_streaming_on_over_off", "BM_ExtentSimulationStreaming/1",
     "BM_ExtentSimulationStreaming/0", 1.0),
    ("extent_warm_on_over_off", "BM_ExtentSimulation/1",
     "BM_ExtentSimulation/0", None),
    ("lru_run_over_per_block", "BM_LruTouchRun/64",
     "BM_LruTouchPerBlock/64", None),
    ("disk_run_over_per_block", "BM_DiskServiceRun/64",
     "BM_DiskServicePerBlock/64", None),
]


# Everything bench_micro's tracked benchmarks can see: the storage
# simulator stack plus the benchmark definitions themselves. Editing any
# of these without re-recording a snapshot is exactly the drift the
# freshness gate exists to catch.
FINGERPRINTED_GLOBS = [
    "src/storage/*.hpp",
    "src/storage/*.cpp",
    "bench/bench_micro.cpp",
]

STAMP_KEY = "flo_source_fingerprint"


def source_fingerprint(repo_root):
    """Content hash of the bench-visible sources, stable across machines."""
    digest = hashlib.sha256()
    paths = []
    for pattern in FINGERPRINTED_GLOBS:
        paths.extend(glob.glob(os.path.join(repo_root, pattern)))
    if not paths:
        raise SystemExit(f"error: no bench-visible sources under {repo_root}")
    for path in sorted(paths):
        digest.update(os.path.relpath(path, repo_root).encode())
        digest.update(b"\0")
        with open(path, "rb") as f:
            digest.update(f.read())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def stamp_snapshot(path, repo_root):
    with open(path) as f:
        doc = json.load(f)
    doc[STAMP_KEY] = source_fingerprint(repo_root)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"stamped {path} with {STAMP_KEY}={doc[STAMP_KEY]}")


def check_freshness(baseline_path, repo_root):
    """Returns an error string, a warning string, or (None, None)."""
    with open(baseline_path) as f:
        stamp = json.load(f).get(STAMP_KEY)
    if stamp is None:
        return None, (f"{baseline_path} predates snapshot stamping; "
                      "freshness not enforced")
    current = source_fingerprint(repo_root)
    if current != stamp:
        return (f"bench-visible sources (fingerprint {current}) changed "
                f"since the latest snapshot {baseline_path} (stamp {stamp}); "
                "re-run bench_micro and commit a new stamped "
                "results/trajectory/BENCH_simulator.pr<N>.json"), None
    return None, None


def items_per_second(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("benchmarks", []):
        ips = row.get("items_per_second")
        if ips:
            out[row["name"]] = float(ips)
    return out


def ratios_of(per):
    out = {}
    for name, num, den, _floor in TRACKED_RATIOS:
        if num in per and den in per and per[den] > 0:
            out[name] = per[num] / per[den]
    return out


def latest_snapshot(directory):
    """Picks the highest-numbered BENCH_simulator.pr<N>.json in `directory`.

    Gating against the latest committed snapshot (instead of a pinned PR
    number) means each PR that lands a new snapshot automatically tightens
    the trajectory for the next one, with no CI edit.
    """
    best = None
    best_n = -1
    for entry in os.listdir(directory):
        m = re.fullmatch(r"BENCH_simulator\.pr(\d+)\.json", entry)
        if m and int(m.group(1)) > best_n:
            best_n = int(m.group(1))
            best = os.path.join(directory, entry)
    if best is None:
        raise SystemExit(
            f"error: no BENCH_simulator.pr<N>.json snapshots in {directory}")
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench_micro JSON output")
    parser.add_argument("--baseline",
                        help="committed trajectory snapshot to gate against")
    parser.add_argument("--baseline-dir",
                        help="directory of trajectory snapshots; the "
                             "highest-numbered BENCH_simulator.pr<N>.json "
                             "becomes the baseline")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional regression of each ratio "
                             "vs the baseline (default 0.5)")
    parser.add_argument("--stamp", action="store_true",
                        help="write the bench-visible source fingerprint "
                             "into the given JSON file and exit")
    parser.add_argument("--repo-root", default=".",
                        help="repository root for the source fingerprint "
                             "(default: current directory)")
    parser.add_argument("--require-fresh", action="store_true",
                        help="fail when the baseline snapshot's stamp does "
                             "not match the working tree's bench-visible "
                             "sources (unstamped baselines only warn)")
    args = parser.parse_args()
    if args.baseline and args.baseline_dir:
        parser.error("--baseline and --baseline-dir are mutually exclusive")
    if args.stamp:
        stamp_snapshot(args.current, args.repo_root)
        return 0
    if args.baseline_dir:
        args.baseline = latest_snapshot(args.baseline_dir)
        print(f"baseline: {args.baseline}")

    current = ratios_of(items_per_second(args.current))
    if not current:
        print("error: no tracked ratios found in", args.current)
        return 1
    baseline = {}
    if args.baseline:
        baseline = ratios_of(items_per_second(args.baseline))

    failures = []
    if args.require_fresh and args.baseline:
        error, warning = check_freshness(args.baseline, args.repo_root)
        if error:
            failures.append(error)
        if warning:
            print("warning:", warning)
    print(f"{'ratio':34} {'current':>10} {'baseline':>10}  gate")
    for name, _num, _den, floor in TRACKED_RATIOS:
        if name not in current:
            continue
        cur = current[name]
        base = baseline.get(name)
        gates = []
        if floor is not None:
            gates.append(f">= {floor:g}")
            if cur < floor:
                failures.append(f"{name}: {cur:.2f} below hard floor {floor:g}")
        if base is not None:
            allowed = base * (1.0 - args.tolerance)
            gates.append(f">= {allowed:.2f} (baseline*{1 - args.tolerance:g})")
            if cur < allowed:
                failures.append(
                    f"{name}: {cur:.2f} regressed beyond tolerance "
                    f"(baseline {base:.2f}, floor {allowed:.2f})")
        print(f"{name:34} {cur:10.2f} "
              f"{base if base is not None else float('nan'):10.2f}  "
              f"{'; '.join(gates) if gates else 'tracked only'}")

    if failures:
        print("\nPERF TRAJECTORY GATE FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("\nperf trajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
