// flo_fuzz — property-based differential fuzzer for the whole
// compile -> trace -> simulate stack (DESIGN.md §4f).
//
//   flo_fuzz [--seed N] [--iters N] [--oracle GLOB] [--log FILE.jsonl]
//            [--repro-dir DIR] [--no-shrink] [--huge-every N]
//            [--list-oracles]
//
// Generates seeded random programs and storage systems, checks every
// glob-selected oracle against each case, greedily shrinks failures and
// writes committed-ready `.flo` repros. Failures go to the JSONL log
// (one object per line) when --log is given. Deterministic: the same
// seed + iters + oracle set reproduces the same cases and verdicts.
//
// Exit codes: 0 all oracles held, 1 at least one failure (or a harness
// error), 2 usage.
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/harness.hpp"
#include "testing/oracles.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed N] [--iters N] [--oracle GLOB] [--log FILE.jsonl]"
               " [--repro-dir DIR] [--no-shrink] [--huge-every N]"
               " [--list-oracles]\n";
  return 2;
}

/// Accepts both `--key value` and `--key=value` spellings.
bool take_value(const std::string& arg, const std::string& key, int argc,
                char** argv, int& i, std::string& out) {
  if (arg == key) {
    if (i + 1 >= argc) return false;
    out = argv[++i];
    return true;
  }
  if (arg.rfind(key + "=", 0) == 0) {
    out = arg.substr(key.size() + 1);
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flo;
  testing::FuzzOptions options;
  options.iters = 100;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--list-oracles") {
      for (const auto& oracle : testing::all_oracles()) {
        std::cout << oracle.name << (oracle.element_walk ? "" : " [closed-form]")
                  << "\n    " << oracle.description << '\n';
      }
      return 0;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (take_value(arg, "--seed", argc, argv, i, value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (take_value(arg, "--iters", argc, argv, i, value)) {
      options.iters = std::strtoull(value.c_str(), nullptr, 10);
    } else if (take_value(arg, "--oracle", argc, argv, i, value)) {
      options.oracle_glob = value;
    } else if (take_value(arg, "--log", argc, argv, i, value)) {
      options.log_path = value;
    } else if (take_value(arg, "--repro-dir", argc, argv, i, value)) {
      options.repro_dir = value;
    } else if (take_value(arg, "--huge-every", argc, argv, i, value)) {
      options.huge_every = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  try {
    const testing::FuzzReport report = testing::run_fuzz(options, &std::cerr);
    std::cout << report.summary() << '\n';
    if (!report.ok()) {
      for (const auto& failure : report.failures) {
        std::cout << "\n=== " << failure.oracle << " (iter "
                  << failure.iteration << ", seed " << failure.case_seed
                  << ")\n"
                  << failure.message << "\n--- shrunk repro";
        if (!failure.repro_path.empty()) {
          std::cout << " (" << failure.repro_path << ")";
        }
        std::cout << " ---\n" << failure.repro;
      }
      return 1;
    }
  } catch (const std::exception& err) {
    std::cerr << "flo_fuzz: " << err.what() << '\n';
    return 1;
  }
  return 0;
}
