// flo_opt — the standalone layout-optimizer driver.
//
//   flo_opt <program.flo> [--check] [--threads N] [--mask both|io|storage]
//           [--solver unimodular|constraint] [--simulate] [--pseudocode]
//           [--faults SPEC] [--qos SPEC] [--sched look|fcfs|priority]
//           [--metrics off|text|json|chrome]
//
// `--check` parses and validates only (no optimization, no output beyond
// diagnostics) — the corpus tests and fuzzer repros use it as a fast
// accept/reject probe.
//
// Reads a program in the text format of src/ir/parser.hpp, runs the
// inter-node file layout optimizer against the (scaled) Table 1 topology,
// prints the per-array transform plans, and optionally simulates the
// default vs optimized executions. `--faults` (or the FLO_FAULTS
// environment variable) injects storage faults into the simulation — see
// src/storage/fault_model.hpp for the spec syntax. `--qos` / `--sched`
// (or FLO_QOS / FLO_SCHED) apply a tenant QoS configuration — cache
// partitioning shares and the disk scheduling policy, src/storage/qos.hpp
// syntax; a malformed spec is a configuration error (exit 2), never a
// silent fallback. `--metrics` (or
// FLO_METRICS) dumps compile/simulation counters and spans to
// flo_opt.metrics.* / flo_opt.trace.json next to the working directory;
// stdout is unaffected.
//
// Malformed programs produce a compiler-style `file:line: message`
// diagnostic and exit code 2; other failures exit 1.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "obs/sink.hpp"
#include "storage/fault_model.hpp"
#include "storage/qos.hpp"
#include "util/format.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <program.flo> [--check] [--threads N]"
               " [--mask both|io|storage]"
               " [--solver unimodular|constraint]"
               " [--simulate] [--pseudocode] [--faults SPEC]"
               " [--qos SPEC] [--sched look|fcfs|priority]"
               " [--metrics off|text|json|chrome]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flo;
  if (argc < 2) return usage(argv[0]);

  std::string path;
  std::size_t threads = 64;
  layout::LayerMask mask = layout::LayerMask::kBoth;
  bool simulate = false;
  bool pseudocode = false;
  bool check_only = false;
  core::SolverKind solver = core::solver_from_env();
  std::string fault_spec;
  std::string qos_spec;
  std::string sched_name;
  obs::SinkMode metrics = obs::sink_mode_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--faults" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (arg == "--qos" && i + 1 < argc) {
      qos_spec = argv[++i];
    } else if (arg == "--sched" && i + 1 < argc) {
      sched_name = argv[++i];
      if (!storage::parse_sched_policy(sched_name)) return usage(argv[0]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      const std::string mode = argv[++i];
      metrics = obs::parse_sink_mode(mode);
      if (metrics == obs::SinkMode::kOff && mode != "off") {
        return usage(argv[0]);
      }
    } else if (arg == "--mask" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "both") {
        mask = layout::LayerMask::kBoth;
      } else if (m == "io") {
        mask = layout::LayerMask::kIoOnly;
      } else if (m == "storage") {
        mask = layout::LayerMask::kStorageOnly;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--solver" && i + 1 < argc) {
      const auto parsed = core::parse_solver(argv[++i]);
      if (!parsed) return usage(argv[0]);
      solver = *parsed;
    } else if (arg.rfind("--solver=", 0) == 0) {
      const auto parsed = core::parse_solver(arg.substr(9));
      if (!parsed) return usage(argv[0]);
      solver = *parsed;
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--simulate") {
      simulate = true;
    } else if (arg == "--pseudocode") {
      pseudocode = true;
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  // QoS is configuration, not input: a malformed spec (flag or FLO_QOS /
  // FLO_SCHED) is diagnosed up front and exits 2 like a parse error, so a
  // typo never silently simulates without the partitioning asked for.
  storage::QosConfig qos;
  try {
    qos = qos_spec.empty() ? storage::qos_config_from_env()
                           : storage::parse_qos_spec(qos_spec);
  } catch (const std::exception& err) {
    std::cerr << "flo_opt.cpp: " << (qos_spec.empty() ? "FLO_QOS" : "--qos")
              << ": " << err.what() << '\n';
    return 2;
  }
  if (!sched_name.empty()) {
    qos.scheduler = *storage::parse_sched_policy(sched_name);
    qos.enabled = true;
  }

  if (metrics != obs::SinkMode::kOff) obs::set_enabled(true);

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  try {
    const ir::Program program = ir::parse_program(buffer.str());
    if (pseudocode) std::cout << ir::to_pseudocode(program) << '\n';
    if (check_only) {
      std::cout << path << ": ok (" << program.arrays().size() << " arrays, "
                << program.nests().size() << " nests)\n";
      return 0;
    }

    core::ExperimentConfig config;
    config.topology.compute_nodes = threads;
    config.threads = threads;
    config.topology.fault = fault_spec.empty()
                                ? storage::fault_config_from_env()
                                : storage::parse_fault_spec(fault_spec);
    config.topology.qos = qos;
    const storage::StorageTopology topology(config.topology);
    const parallel::ParallelSchedule schedule(program, threads);
    const core::FileLayoutOptimizer optimizer(topology);
    core::OptimizerOptions options;
    options.mask = mask;
    options.solver = solver;
    const auto result = optimizer.optimize(program, schedule, options);
    std::cout << result.plan.to_string() << '\n';

    if (simulate) {
      config.solver = solver;
      core::ExperimentConfig inter = config;
      inter.scheme = core::Scheme::kInterNode;
      const auto results = core::ExperimentEngine().run(
          {{"default", &program, config}, {"inter-node", &program, inter}});
      const auto& base = results[0];
      const auto& opt = results[1];
      std::cout << "default:    " << base.sim.summary() << '\n';
      std::cout << "inter-node: " << opt.sim.summary() << '\n';
      std::cout << "normalized exec: "
                << util::format_fixed(
                       opt.sim.exec_time / base.sim.exec_time, 2)
                << '\n';
    }
  } catch (const ir::ParseError& err) {
    std::cerr << path << ':' << err.line() << ": " << err.message() << '\n';
    return 2;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << '\n';
    return 1;
  }
  if (metrics != obs::SinkMode::kOff) {
    const std::string out =
        obs::flush_to_file(metrics, obs::default_sink_path(metrics, "flo_opt"));
    std::cerr << "metrics (" << obs::sink_mode_name(metrics) << "): " << out
              << '\n';
  }
  return 0;
}
