// flo_serve — the layout-as-a-service compile daemon (DESIGN.md §4h).
//
//   flo_serve --socket PATH | --stdio
//             [--workers N] [--queue-depth N]
//             [--rate R] [--burst B] [--deadline-ms D]
//             [--cache-capacity N] [--cache-journal PATH]
//             [--max-frame BYTES] [--io-timeout-ms N]
//             [--metrics off|text|json|chrome] [--metrics-out PATH]
//
// Serves framed flo-req-v1 requests (src/service/protocol.hpp) over a
// Unix socket (one reader thread per connection) or stdin/stdout. Every
// flag has an FLO_SERVE_* environment default (FLO_SERVE_WORKERS,
// FLO_SERVE_QUEUE_DEPTH, FLO_SERVE_RATE, FLO_SERVE_BURST,
// FLO_SERVE_DEADLINE_MS, FLO_SERVE_CACHE_CAPACITY,
// FLO_SERVE_CACHE_JOURNAL, FLO_SERVE_MAX_FRAME, FLO_SERVE_IO_TIMEOUT_MS);
// the command line wins. A malformed value in either place is a
// configuration bug, not a preference — the daemon prints a
// `flo_serve: <source>: message` diagnostic and exits 2 rather than
// starting with a silently-wrong limit.
//
// SIGINT/SIGTERM request a graceful stop: in-queue requests finish, the
// socket file is removed, metrics flush, exit 0. SIGPIPE is ignored —
// a client that disappears mid-response costs a counter, not the daemon.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "service/server.hpp"
#include "storage/qos.hpp"
#include "storage/sim_core.hpp"

namespace {

flo::service::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // one atomic store
}

/// Configuration error: `source` is the flag or env var at fault. Printed
/// as `flo_serve: <source>: <message>`, exit 2.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(const std::string& source, const std::string& message)
      : std::runtime_error(source + ": " + message) {}
};

std::uint64_t parse_u64(const std::string& source, const std::string& value) {
  if (value.empty()) throw ConfigError(source, "empty value");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() || value[0] == '-') {
    throw ConfigError(source, "malformed integer '" + value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_nonneg(const std::string& source, const std::string& value) {
  if (value.empty()) throw ConfigError(source, "empty value");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size() || !(v >= 0) ||
      v > 1e18) {
    throw ConfigError(source, "malformed number '" + value + "'");
  }
  return v;
}

const char* env_or_null(const char* name) { return std::getenv(name); }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --socket PATH | --stdio\n"
               "  [--workers N] [--queue-depth N] [--rate R] [--burst B]\n"
               "  [--deadline-ms D] [--cache-capacity N]"
               " [--cache-journal PATH]\n"
               "  [--max-frame BYTES] [--io-timeout-ms N]\n"
               "  [--metrics off|text|json|chrome] [--metrics-out PATH]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flo;
  std::signal(SIGPIPE, SIG_IGN);

  std::string socket_path;
  bool stdio = false;
  service::ServerConfig config;
  obs::SinkMode metrics = obs::sink_mode_from_env();
  std::string metrics_out;

  try {
    // Environment defaults first; flags override below.
    struct EnvU64 { const char* name; std::size_t* target; };
    for (const EnvU64& e : {
             EnvU64{"FLO_SERVE_WORKERS", &config.workers},
             EnvU64{"FLO_SERVE_QUEUE_DEPTH", &config.queue_depth},
             EnvU64{"FLO_SERVE_CACHE_CAPACITY", &config.cache_capacity},
             EnvU64{"FLO_SERVE_MAX_FRAME", &config.max_frame}}) {
      if (const char* v = env_or_null(e.name)) {
        *e.target = static_cast<std::size_t>(parse_u64(e.name, v));
      }
    }
    if (const char* v = env_or_null("FLO_SERVE_RATE")) {
      config.tenant_rate = parse_nonneg("FLO_SERVE_RATE", v);
    }
    if (const char* v = env_or_null("FLO_SERVE_BURST")) {
      config.tenant_burst = parse_nonneg("FLO_SERVE_BURST", v);
    }
    if (const char* v = env_or_null("FLO_SERVE_DEADLINE_MS")) {
      config.default_deadline_ms = parse_nonneg("FLO_SERVE_DEADLINE_MS", v);
    }
    if (const char* v = env_or_null("FLO_SERVE_IO_TIMEOUT_MS")) {
      config.io_timeout_ms =
          static_cast<int>(parse_u64("FLO_SERVE_IO_TIMEOUT_MS", v));
    }
    if (const char* v = env_or_null("FLO_SERVE_CACHE_JOURNAL")) {
      config.cache_journal = v;
    }

    for (int i = 1; i < argc; ++i) {
      const std::string raw = argv[i];
      // Both --flag value and --flag=value spellings are accepted.
      const std::size_t eq = raw.find('=');
      const std::string arg = raw.substr(0, eq);
      const bool has_inline = eq != std::string::npos;
      const std::string inline_value =
          has_inline ? raw.substr(eq + 1) : std::string();
      const auto value = [&](const char* flag) -> std::string {
        if (has_inline) return inline_value;
        if (i + 1 >= argc) throw ConfigError(flag, "missing value");
        return argv[++i];
      };
      if (arg == "--socket") socket_path = value("--socket");
      else if (arg == "--stdio") stdio = true;
      else if (arg == "--workers")
        config.workers =
            static_cast<std::size_t>(parse_u64("--workers", value(arg.c_str())));
      else if (arg == "--queue-depth")
        config.queue_depth = static_cast<std::size_t>(
            parse_u64("--queue-depth", value(arg.c_str())));
      else if (arg == "--rate")
        config.tenant_rate = parse_nonneg("--rate", value(arg.c_str()));
      else if (arg == "--burst")
        config.tenant_burst = parse_nonneg("--burst", value(arg.c_str()));
      else if (arg == "--deadline-ms")
        config.default_deadline_ms =
            parse_nonneg("--deadline-ms", value(arg.c_str()));
      else if (arg == "--cache-capacity")
        config.cache_capacity = static_cast<std::size_t>(
            parse_u64("--cache-capacity", value(arg.c_str())));
      else if (arg == "--cache-journal")
        config.cache_journal = value(arg.c_str());
      else if (arg == "--max-frame")
        config.max_frame = static_cast<std::size_t>(
            parse_u64("--max-frame", value(arg.c_str())));
      else if (arg == "--io-timeout-ms")
        config.io_timeout_ms =
            static_cast<int>(parse_u64("--io-timeout-ms", value(arg.c_str())));
      else if (arg == "--metrics") {
        const std::string mode = value(arg.c_str());
        metrics = obs::parse_sink_mode(mode);
        if (metrics == obs::SinkMode::kOff && mode != "off") {
          throw ConfigError("--metrics", "unknown mode '" + mode + "'");
        }
      } else if (arg == "--metrics-out") {
        metrics_out = value(arg.c_str());
      } else {
        std::cerr << "flo_serve: unknown argument '" << arg << "'\n";
        return usage(argv[0]);
      }
    }

    if (stdio != socket_path.empty()) {
      // Exactly one transport must be selected.
      std::cerr << "flo_serve: pass exactly one of --socket PATH or --stdio\n";
      return usage(argv[0]);
    }
    if (config.queue_depth == 0) {
      throw ConfigError("--queue-depth", "must be at least 1");
    }

    // A daemon must not discover a malformed FLO_SIM on its first compile
    // (the engine reads it lazily per experiment config) — fail now.
    try {
      (void)storage::sim_core_from_env();
    } catch (const std::exception& e) {
      throw ConfigError("FLO_SIM", e.what());
    }
    // Same startup discipline for the tenant QoS knobs the compile path
    // reads per request: a malformed spec fails here, not mid-service.
    try {
      (void)storage::qos_config_from_env();
    } catch (const std::exception& e) {
      throw ConfigError("FLO_QOS", e.what());
    }
  } catch (const ConfigError& e) {
    std::cerr << "flo_serve: " << e.what() << "\n";
    return 2;
  }

  if (metrics != obs::SinkMode::kOff) obs::set_enabled(true);

  try {
    service::Server server(std::move(config));
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::cerr << "flo_serve: serving on "
              << (stdio ? std::string("stdio") : socket_path) << " (workers="
              << server.config().workers
              << " queue=" << server.config().queue_depth
              << "), cache journal replayed " << server.journal_replayed()
              << " entries\n";
    if (stdio) {
      server.serve_fd(0, 1);
    } else {
      server.serve_unix(socket_path);
    }
    server.stop();
    g_server = nullptr;
    if (metrics != obs::SinkMode::kOff) {
      const std::string path = metrics_out.empty()
                                   ? obs::default_sink_path(metrics, "flo_serve")
                                   : metrics_out;
      obs::flush_to_file(metrics, path);
      std::cerr << "flo_serve: metrics written to " << path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "flo_serve: fatal: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "flo_serve: clean shutdown\n";
  return 0;
}
