// flo_serve_chaos — seeded chaos harness for the flo_serve daemon.
//
//   flo_serve_chaos --server PATH [--seed N] [--clients N] [--tenants N]
//                   [--requests N] [--no-kill] [--dir PATH]
//
// Spawns a real flo_serve process on a temp-dir Unix socket and holds it
// to the service's three robustness invariants:
//
//   1. every client gets a terminal outcome — a typed response
//      (ok/shed/throttled/error) for every well-framed request, or a
//      prompt connection close after a hostile frame; never a hang
//      (any read blocking past the harness timeout is a failure);
//   2. no cross-tenant result leakage — each response must echo the
//      request's id, tenant and body_hash (fnv1a of the program text the
//      client actually sent), and two ok-responses for the same
//      fingerprint must carry identical bodies;
//   3. crash-consistent caching — SIGKILL mid-flight, restart on the same
//      journal, and the warmup program must come back `cache: hit` with a
//      byte-identical body.
//
// The load mix is seeded (util::Rng, default seed 42): ~70% valid
// programs from testing::random_program, plus malformed payloads, bad
// headers, oversized frames, expired deadlines and half-frame stalls.
// Exit 0 when every invariant held, 1 otherwise (with a failure list and
// the server's stderr log path for CI artifact upload).
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/compile_cache.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "testing/emit.hpp"
#include "testing/generator.hpp"
#include "util/framing.hpp"
#include "util/rng.hpp"

namespace {

using namespace flo;

constexpr int kClientTimeoutMs = 10000;  ///< blocking past this = stuck client
constexpr int kServerIoTimeoutMs = 250;  ///< server-side slow-client budget

struct Options {
  std::string server_binary;
  std::uint64_t seed = 42;
  std::size_t clients = 4;
  std::size_t tenants = 3;
  std::size_t requests = 40;  ///< chaos requests per client
  bool kill = true;
  std::string dir;  ///< scratch dir (created if empty)
};

/// Failure collector shared by every client thread.
class Failures {
 public:
  void add(const std::string& message) {
    const std::lock_guard<std::mutex> lock(mutex_);
    messages_.push_back(message);
  }
  std::vector<std::string> take() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return messages_;
  }
  bool empty() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return messages_.empty();
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> messages_;
};

/// fingerprint -> body consistency map (leak detector): one compiled
/// fingerprint must always serve one body, no matter which tenant asks.
class BodyLedger {
 public:
  /// Returns an error message on mismatch, empty string otherwise.
  std::string check(const std::string& fingerprint, const std::string& body) {
    if (fingerprint.empty()) return {};
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, fresh] = bodies_.try_emplace(fingerprint, body);
    if (!fresh && it->second != body) {
      return "fingerprint " + fingerprint +
             " served two different bodies (cross-request corruption)";
    }
    return {};
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::string> bodies_;
};

struct ServerProcess {
  pid_t pid = -1;
  std::string socket_path;
  std::string journal_path;
  std::string log_path;
};

/// Forks + execs flo_serve on `socket_path`, stderr appended to the log.
ServerProcess spawn_server(const Options& options,
                           const std::string& socket_path,
                           const std::string& journal_path,
                           const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "chaos: fork failed: " << std::strerror(errno) << "\n";
    std::exit(1);
  }
  if (pid == 0) {
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, 2);
      ::close(log_fd);
    }
    // Small queue + short io timeout so overload and slow-client paths
    // actually trigger under a few dozen clients.
    ::execl(options.server_binary.c_str(), options.server_binary.c_str(),
            "--socket", socket_path.c_str(),          //
            "--cache-journal", journal_path.c_str(),  //
            "--workers", "2",                         //
            "--queue-depth", "8",                     //
            "--io-timeout-ms", std::to_string(kServerIoTimeoutMs).c_str(),
            "--max-frame", "65536",  //
            static_cast<char*>(nullptr));
    std::cerr << "chaos: exec " << options.server_binary
              << " failed: " << std::strerror(errno) << "\n";
    ::_exit(127);
  }
  return ServerProcess{pid, socket_path, journal_path, log_path};
}

/// Connects with retries while the daemon starts (or restarts).
bool connect_with_retry(service::Client& client, const std::string& path,
                        int budget_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      client.connect_unix(path);
      return true;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return false;
}

/// True when `pid` exited within `budget_ms`.
bool wait_exit(pid_t pid, int budget_ms, int* status_out) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      if (status_out != nullptr) *status_out = status;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// A tiny fixed program every phase reuses: its fingerprint/body anchor
/// the warmup, the cache-hit assertions and the restart-recovery check.
const char* warmup_program() {
  return "program warmup\n"
         "array A 64 64\n"
         "array B 64 64\n"
         "nest t parallel=1 {\n"
         "  for i1 = 0..63\n"
         "  for i2 = 0..63\n"
         "  read  A[i1, i2]\n"
         "  write B[i2, i1]\n"
         "}\n";
}

service::Request warmup_request(std::uint64_t id) {
  service::Request request;
  request.id = id;
  request.tenant = "warmup";
  request.program = warmup_program();
  return request;
}

/// Verifies the per-response invariants every terminal response must hold.
void check_echo(const service::Request& request,
                const service::Response& response, const char* where,
                Failures& failures, BodyLedger& ledger) {
  const std::string expect_hash =
      core::hex16(core::fnv1a(request.program));
  if (response.id != request.id) {
    failures.add(std::string(where) + ": response id " +
                 std::to_string(response.id) + " != request id " +
                 std::to_string(request.id));
  }
  if (response.tenant != request.tenant) {
    failures.add(std::string(where) + ": response tenant '" +
                 response.tenant + "' != request tenant '" + request.tenant +
                 "' (cross-tenant leak)");
  }
  if (!response.body_hash.empty() && response.body_hash != expect_hash) {
    failures.add(std::string(where) + ": body_hash mismatch for tenant '" +
                 request.tenant + "' (response computed for someone else)");
  }
  if (response.status == service::Status::kOk) {
    const std::string leak = ledger.check(response.fingerprint, response.body);
    if (!leak.empty()) failures.add(std::string(where) + ": " + leak);
  }
}

/// One chaos client: seeded mix of valid and hostile traffic. Reconnects
/// whenever the server (rightly) drops the connection; fails loudly on
/// hangs and invariant violations.
void chaos_client(const Options& options, std::size_t index,
                  const std::string& socket_path, Failures& failures,
                  BodyLedger& ledger, std::atomic<std::uint64_t>& ok_count) {
  util::Rng rng(options.seed * 1000003 + index);
  service::Client client;
  if (!connect_with_retry(client, socket_path, kClientTimeoutMs)) {
    failures.add("client " + std::to_string(index) + ": could not connect");
    return;
  }
  testing::GeneratorOptions gen;
  gen.max_arrays = 2;
  gen.max_nests = 1;
  gen.max_depth = 2;
  gen.max_trip = 6;
  gen.allow_writes = false;

  for (std::size_t n = 0; n < options.requests; ++n) {
    if (!client.connected() &&
        !connect_with_retry(client, socket_path, kClientTimeoutMs)) {
      failures.add("client " + std::to_string(index) +
                   ": reconnect failed mid-run");
      return;
    }
    const std::uint64_t id = (static_cast<std::uint64_t>(index) << 32) | n;
    const std::uint64_t dice = rng.next_below(100);
    const std::string where =
        "client " + std::to_string(index) + " req " + std::to_string(n);
    try {
      if (dice < 70) {
        // Valid request from a random tenant; tiny deadline 1 in 5.
        service::Request request;
        request.id = id;
        request.tenant = "tenant" + std::to_string(rng.next_below(
                                        static_cast<std::uint64_t>(
                                            options.tenants)));
        request.program = testing::emit_flo(testing::random_program(rng, gen));
        request.threads = 4;
        if (rng.next_below(5) == 0) request.deadline_ms = 0.01;
        const std::optional<service::Response> response =
            client.call(request, kClientTimeoutMs);
        if (!response) {
          failures.add(where + ": server closed instead of answering a "
                               "valid request");
          continue;
        }
        check_echo(request, *response, where.c_str(), failures, ledger);
        if (response->status == service::Status::kOk) ok_count.fetch_add(1);
      } else if (dice < 80) {
        // Malformed payload: random bytes, correctly framed. The server
        // must answer `error` and keep the connection.
        std::string garbage;
        const std::uint64_t len = 1 + rng.next_below(64);
        for (std::uint64_t i = 0; i < len; ++i) {
          garbage.push_back(static_cast<char>(rng.next_below(256)));
        }
        client.send_raw(garbage, kClientTimeoutMs);
        const auto payload = client.recv_raw(16u << 20, kClientTimeoutMs);
        if (!payload) {
          client.close();  // server may close on framing-looking garbage
          continue;
        }
        const service::Response response = service::parse_response(*payload);
        if (response.status != service::Status::kError) {
          failures.add(where + ": garbage payload answered with status '" +
                       service::status_name(response.status) + "'");
        }
      } else if (dice < 85) {
        // Valid magic, hostile header.
        client.send_raw("flo-req-v1\nid: not-a-number\n\nx\n",
                        kClientTimeoutMs);
        const auto payload = client.recv_raw(16u << 20, kClientTimeoutMs);
        if (!payload) {
          client.close();
          continue;
        }
        const service::Response response = service::parse_response(*payload);
        if (response.status != service::Status::kError) {
          failures.add(where + ": bad header answered with status '" +
                       service::status_name(response.status) + "'");
        }
      } else if (dice < 90) {
        // Oversized frame (server max-frame is 64 KiB): expect an error
        // response and/or a close — never a hang.
        const std::string big(128 * 1024, 'x');
        try {
          client.send_raw(big, kClientTimeoutMs);
          (void)client.recv_raw(16u << 20, kClientTimeoutMs);
        } catch (const util::FramingError&) {
          // Server closed while we were still writing — acceptable.
        }
        client.close();
      } else {
        // Half a frame, then stall past the server's io timeout: the
        // 4-byte prefix promises 100 bytes, only 10 arrive.
        const std::string prefix{'\0', '\0', '\0', '\x64'};
        client.send_bytes(prefix + std::string(10, 'y'));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kServerIoTimeoutMs * 2));
        try {
          (void)client.recv_raw(16u << 20, kClientTimeoutMs);
        } catch (const util::FramingError&) {
        }
        client.close();  // stream is unsynced either way
      }
    } catch (const util::FramingTimeout&) {
      failures.add(where + ": client blocked past " +
                   std::to_string(kClientTimeoutMs) + " ms (stuck client)");
      return;
    } catch (const util::FramingError&) {
      client.close();  // dropped connection: reconnect next iteration
    } catch (const std::exception& e) {
      failures.add(where + ": unexpected exception: " + e.what());
      client.close();
    }
  }
}

int parse_cli(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "chaos: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--server") options.server_binary = value();
    else if (arg == "--seed") options.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--clients") options.clients = std::strtoul(value().c_str(), nullptr, 10);
    else if (arg == "--tenants") options.tenants = std::strtoul(value().c_str(), nullptr, 10);
    else if (arg == "--requests") options.requests = std::strtoul(value().c_str(), nullptr, 10);
    else if (arg == "--no-kill") options.kill = false;
    else if (arg == "--dir") options.dir = value();
    else {
      std::cerr << "usage: " << argv[0]
                << " --server PATH [--seed N] [--clients N] [--tenants N]"
                   " [--requests N] [--no-kill] [--dir PATH]\n";
      return 2;
    }
  }
  if (options.server_binary.empty()) {
    std::cerr << "chaos: --server PATH is required\n";
    return 2;
  }
  if (options.tenants == 0) options.tenants = 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);
  Options options;
  if (const int rc = parse_cli(argc, argv, options); rc != 0) return rc;

  std::string dir = options.dir;
  if (dir.empty()) {
    std::string tmpl = "/tmp/flo_chaos.XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::cerr << "chaos: mkdtemp failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    dir = tmpl;
  } else {
    ::mkdir(dir.c_str(), 0755);
  }
  const std::string socket_path = dir + "/flo_serve.sock";
  const std::string journal_path = dir + "/cache.journal";
  const std::string log_path = dir + "/flo_serve.log";
  std::cout << "chaos: seed=" << options.seed << " dir=" << dir << "\n";

  Failures failures;
  BodyLedger ledger;

  ServerProcess server =
      spawn_server(options, socket_path, journal_path, log_path);

  // --- Phase A: warmup + crash recovery -------------------------------
  std::string warm_fingerprint;
  std::string warm_body;
  {
    service::Client client;
    if (!connect_with_retry(client, socket_path, kClientTimeoutMs)) {
      std::cerr << "chaos: FAIL server never came up (log: " << log_path
                << ")\n";
      ::kill(server.pid, SIGKILL);
      return 1;
    }
    try {
      const service::Request request = warmup_request(1);
      const auto first = client.call(request, kClientTimeoutMs);
      if (!first || first->status != service::Status::kOk) {
        failures.add("warmup: first compile did not return ok");
      } else {
        warm_fingerprint = first->fingerprint;
        warm_body = first->body;
        check_echo(request, *first, "warmup", failures, ledger);
        if (first->cache != "miss") {
          failures.add("warmup: fresh daemon reported cache '" +
                       first->cache + "' (expected miss)");
        }
        const auto second = client.call(warmup_request(2), kClientTimeoutMs);
        if (!second || second->status != service::Status::kOk ||
            second->cache != "hit") {
          failures.add("warmup: repeat compile was not a cache hit");
        } else if (second->body != warm_body) {
          failures.add("warmup: cache hit body differs from compiled body");
        }
      }
    } catch (const std::exception& e) {
      failures.add(std::string("warmup: ") + e.what());
    }
  }

  if (options.kill && failures.empty()) {
    // SIGKILL mid-flight: a client with an in-queue request must observe
    // a connection close (not a hang), and the restarted daemon must
    // replay the journal so warmup comes back as a hit.
    service::Client victim;
    if (connect_with_retry(victim, socket_path, kClientTimeoutMs)) {
      try {
        victim.send_raw(serialize_request(warmup_request(3)),
                        kClientTimeoutMs);
      } catch (const std::exception&) {
      }
    }
    ::kill(server.pid, SIGKILL);
    int status = 0;
    if (!wait_exit(server.pid, kClientTimeoutMs, &status)) {
      failures.add("kill: server ignored SIGKILL (unreachable)");
    }
    try {
      const auto orphan = victim.recv_raw(16u << 20, 2000);
      if (orphan) {
        // A response that raced the kill is fine — but it must be ours.
        check_echo(warmup_request(3), service::parse_response(*orphan),
                   "kill-race", failures, ledger);
      }
    } catch (const util::FramingError&) {
      // Closed/truncated mid-kill: the expected outcome.
    } catch (const std::exception& e) {
      failures.add(std::string("kill: victim read: ") + e.what());
    }

    server = spawn_server(options, socket_path, journal_path, log_path);
    service::Client client;
    if (!connect_with_retry(client, socket_path, kClientTimeoutMs)) {
      failures.add("restart: server did not come back on the same journal");
    } else {
      try {
        const auto replay = client.call(warmup_request(4), kClientTimeoutMs);
        if (!replay || replay->status != service::Status::kOk) {
          failures.add("restart: warmup request failed after recovery");
        } else {
          if (replay->cache != "hit") {
            failures.add("restart: journal replay missed (cache '" +
                         replay->cache + "', expected hit)");
          }
          if (replay->body != warm_body) {
            failures.add("restart: replayed body differs from the "
                         "pre-crash compile");
          }
          if (replay->fingerprint != warm_fingerprint) {
            failures.add("restart: replayed fingerprint differs");
          }
        }
      } catch (const std::exception& e) {
        failures.add(std::string("restart: ") + e.what());
      }
    }
  }

  // --- Phase B: seeded concurrent chaos -------------------------------
  std::atomic<std::uint64_t> ok_count{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(options.clients);
    for (std::size_t i = 0; i < options.clients; ++i) {
      clients.emplace_back([&, i] {
        chaos_client(options, i, socket_path, failures, ledger, ok_count);
      });
    }
    for (std::thread& t : clients) t.join();
  }

  // The daemon must have survived the abuse: one more valid request.
  {
    service::Client client;
    if (!connect_with_retry(client, socket_path, kClientTimeoutMs)) {
      failures.add("post-chaos: daemon unreachable");
    } else {
      try {
        const auto last = client.call(warmup_request(99), kClientTimeoutMs);
        if (!last || last->status != service::Status::kOk) {
          failures.add("post-chaos: warmup request no longer succeeds");
        }
      } catch (const std::exception& e) {
        failures.add(std::string("post-chaos: ") + e.what());
      }
    }
  }

  // Graceful shutdown: SIGTERM must exit 0 promptly.
  ::kill(server.pid, SIGTERM);
  int status = 0;
  if (!wait_exit(server.pid, kClientTimeoutMs, &status)) {
    failures.add("shutdown: daemon ignored SIGTERM for 10s");
    ::kill(server.pid, SIGKILL);
    wait_exit(server.pid, kClientTimeoutMs, &status);
  } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    failures.add("shutdown: daemon exit status " + std::to_string(status) +
                 " (expected clean 0)");
  }

  if (ok_count.load() == 0 && options.requests > 0 && options.clients > 0) {
    // Typed errors for every valid program would "pass" the terminal-
    // response invariant while the service is useless — catch that.
    failures.add("chaos: no valid request ever returned ok");
  }

  const std::vector<std::string> messages = failures.take();
  std::cout << "chaos: " << ok_count.load() << " ok responses, "
            << messages.size() << " invariant violations\n";
  if (!messages.empty()) {
    for (const std::string& m : messages) std::cout << "chaos: FAIL " << m << "\n";
    std::cout << "chaos: server log: " << log_path << "\n";
    return 1;
  }
  std::cout << "chaos: PASS\n";
  return 0;
}
