# Test driver: runs `BINARY ARGS` and asserts the exit code and a stderr
# substring. Invoked by ctest entries in tools/CMakeLists.txt:
#   cmake -DBINARY=... -DARGS=... -DEXPECT_EXIT=2 -DEXPECT_STDERR=... \
#         -P run_and_check_exit.cmake
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND "${BINARY}" ${arg_list}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
if(NOT exit_code EQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
          "expected exit ${EXPECT_EXIT}, got ${exit_code}\nstderr: ${err}")
endif()
if(DEFINED EXPECT_STDERR AND NOT err MATCHES "${EXPECT_STDERR}")
  message(FATAL_ERROR
          "stderr does not match '${EXPECT_STDERR}'\nstderr: ${err}")
endif()
